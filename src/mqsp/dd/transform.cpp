#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <vector>

namespace mqsp {

void DecisionDiagram::cutEdge(NodeRef parent, std::size_t edgeIndex) {
    DDNode& n = mutableNode(parent);
    requireThat(!n.isTerminal(), "DecisionDiagram::cutEdge: cannot cut terminal edges");
    requireThat(edgeIndex < n.edges.size(), "DecisionDiagram::cutEdge: edge index out of range");
    n.edges[edgeIndex] = DDEdge{kNoNode, Complex{0.0, 0.0}, /*pruned=*/true};
}

void DecisionDiagram::cutRoot() {
    root_ = kNoNode;
    rootWeight_ = Complex{0.0, 0.0};
}

void DecisionDiagram::renormalize(double tol) {
    if (root_ == kNoNode) {
        return;
    }
    // Post-order renormalization: after cuts the out-weights of a node no
    // longer sum to one, so the residual norm is pushed upward exactly like
    // during construction. `visit` returns the factor to multiply into
    // in-edge weights of a node, or a negative value when the node died
    // (all children cut). Memoized so shared (reduced) nodes renormalize once.
    std::unordered_map<NodeRef, double> factor;
    const std::function<double(NodeRef)> visit = [&](NodeRef ref) -> double {
        if (node(ref).isTerminal()) {
            return 1.0;
        }
        if (const auto it = factor.find(ref); it != factor.end()) {
            return it->second;
        }
        auto& n = mutableNode(ref);
        double sumSquares = 0.0;
        bool any = false;
        for (auto& edge : n.edges) {
            if (edge.isZeroStub()) {
                continue;
            }
            const double childFactor = visit(edge.node);
            if (childFactor < 0.0 || approxZero(edge.weight * childFactor, tol)) {
                // The child died because pruning emptied it; mark the slot
                // as pruned so the approximated node count drops with it.
                edge = DDEdge{kNoNode, Complex{0.0, 0.0}, /*pruned=*/true};
                continue;
            }
            edge.weight *= childFactor;
            sumSquares += squaredMagnitude(edge.weight);
            any = true;
        }
        double result = -1.0;
        if (any) {
            const double norm = std::sqrt(sumSquares);
            for (auto& edge : n.edges) {
                if (!edge.isZeroStub()) {
                    edge.weight /= norm;
                }
            }
            result = norm;
        }
        factor.emplace(ref, result);
        return result;
    };
    const double rootFactor = visit(root_);
    if (rootFactor < 0.0) {
        cutRoot();
        return;
    }
    rootWeight_ *= rootFactor;
}

void DecisionDiagram::normalizeRoot() {
    if (root_ == kNoNode) {
        return;
    }
    const double magnitude = std::abs(rootWeight_);
    requireThat(magnitude > 0.0, "DecisionDiagram::normalizeRoot: zero root weight");
    rootWeight_ /= magnitude;
}

std::size_t DecisionDiagram::reduce(double tol) {
    if (root_ == kNoNode) {
        return 0;
    }
    if (store_->interning()) {
        // Session-backed diagrams are hash-consed at allocation time with
        // the same key scheme reduce uses: every node is already canonical,
        // and the in-place edge rewiring below would corrupt diagrams
        // sharing the store.
        return 0;
    }
    // Bottom-up hash-consing through the uniquing table (same open-
    // addressed machinery as a session store, scoped to this one pass).
    // Because weights were normalized by a fixed scheme during construction
    // (§4.2: "normalized by a fixed scheme to ensure canonicity"),
    // structurally identical sub-trees have identical weights and merge
    // exactly; the tolerance only absorbs rounding.
    dd::UniqueTable unique(tol);
    std::unordered_map<NodeRef, NodeRef> canonical;

    const std::function<NodeRef(NodeRef)> visit = [&](NodeRef ref) -> NodeRef {
        if (node(ref).isTerminal()) {
            return ref;
        }
        if (const auto it = canonical.find(ref); it != canonical.end()) {
            return it->second;
        }
        auto& n = mutableNode(ref);
        for (auto& edge : n.edges) {
            if (!edge.isZeroStub()) {
                edge.node = visit(edge.node);
            }
        }
        const NodeRef merged = unique.findOrInsert(n.site, n.edges, ref);
        canonical.emplace(ref, merged);
        return merged;
    };

    const std::size_t reachableBefore = nodeCount(NodeCountMode::Internal);
    root_ = visit(root_);
    const std::size_t reachableAfter = nodeCount(NodeCountMode::Internal);
    return reachableBefore - reachableAfter;
}

void DecisionDiagram::garbageCollect() {
    if (!store_ || store_->size() == 0) {
        return;
    }
    if (store_->interning()) {
        // Node lifetime on a shared store belongs to the session, not to
        // any one diagram: compaction would remap refs under every sibling.
        return;
    }
    std::vector<NodeRef> remap(store_->size(), kNoNode);
    std::vector<DDNode> kept;
    kept.reserve(store_->size());

    // Keep the terminal at slot 0 unconditionally.
    remap[0] = 0;
    kept.push_back(node(0));

    if (root_ != kNoNode) {
        const std::function<NodeRef(NodeRef)> visit = [&](NodeRef ref) -> NodeRef {
            if (remap[ref] != kNoNode) {
                return remap[ref];
            }
            DDNode copy = node(ref);
            for (auto& edge : copy.edges) {
                if (!edge.isZeroStub()) {
                    edge.node = visit(edge.node);
                }
            }
            kept.push_back(std::move(copy));
            remap[ref] = static_cast<NodeRef>(kept.size() - 1);
            return remap[ref];
        };
        root_ = visit(root_);
    }
    store_->replaceNodes(std::move(kept));
}

} // namespace mqsp
