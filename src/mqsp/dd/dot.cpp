#include "mqsp/dd/decision_diagram.hpp"

#include <sstream>
#include <vector>

namespace mqsp {

std::string DecisionDiagram::toDot() const {
    std::ostringstream out;
    out << "digraph DD {\n  rankdir=TB;\n  node [shape=circle];\n";
    if (root_ == kNoNode) {
        out << "  empty [shape=plaintext, label=\"(zero diagram)\"];\n}\n";
        return out.str();
    }
    out << "  root [shape=plaintext, label=\"" << toString(rootWeight_) << "\"];\n";
    out << "  root -> n" << root_ << ";\n";
    std::vector<bool> seen(poolSize(), false);
    std::vector<NodeRef> stack{root_};
    seen[root_] = true;
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        const DDNode& n = node(ref);
        if (n.isTerminal()) {
            out << "  n" << ref << " [shape=square, label=\"1\"];\n";
            continue;
        }
        out << "  n" << ref << " [label=\"q" << (radix_.numQudits() - 1 - n.site) << "\"];\n";
        for (std::size_t k = 0; k < n.edges.size(); ++k) {
            const DDEdge& edge = n.edges[k];
            if (edge.isZeroStub()) {
                continue;
            }
            out << "  n" << ref << " -> n" << edge.node << " [label=\"" << k << ": "
                << toString(edge.weight, 4) << "\"];\n";
            if (!seen[edge.node]) {
                seen[edge.node] = true;
                stack.push_back(edge.node);
            }
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace mqsp
