#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <functional>
#include <unordered_map>

namespace mqsp {

Complex DecisionDiagram::amplitudeOf(const Digits& digits) const {
    requireThat(digits.size() == radix_.numQudits(),
                "DecisionDiagram::amplitudeOf: digit count mismatch");
    if (root_ == kNoNode) {
        return Complex{0.0, 0.0};
    }
    Complex product = rootWeight_;
    NodeRef current = root_;
    for (std::size_t site = 0; site < digits.size(); ++site) {
        const DDNode& n = node(current);
        ensureThat(!n.isTerminal() && n.site == site,
                   "DecisionDiagram::amplitudeOf: malformed level structure");
        requireThat(digits[site] < n.edges.size(),
                    "DecisionDiagram::amplitudeOf: digit exceeds node arity");
        const DDEdge& edge = n.edges[digits[site]];
        if (edge.isZeroStub()) {
            return Complex{0.0, 0.0};
        }
        product *= edge.weight;
        current = edge.node;
    }
    ensureThat(node(current).isTerminal(),
               "DecisionDiagram::amplitudeOf: path did not end at the terminal");
    return product;
}

namespace {

void fillAmplitudes(const DecisionDiagram& dd, NodeRef ref, Complex prefix, std::uint64_t base,
                    const MixedRadix& radix, std::vector<Complex>& out) {
    const DDNode& n = dd.node(ref);
    if (n.isTerminal()) {
        out[base] = prefix;
        return;
    }
    const auto stride = radix.strideAt(n.site);
    for (std::size_t k = 0; k < n.edges.size(); ++k) {
        const DDEdge& edge = n.edges[k];
        if (edge.isZeroStub()) {
            continue;
        }
        fillAmplitudes(dd, edge.node, prefix * edge.weight, base + k * stride, radix, out);
    }
}

} // namespace

StateVector DecisionDiagram::toStateVector() const {
    std::vector<Complex> amps(radix_.totalDimension(), Complex{0.0, 0.0});
    if (root_ != kNoNode) {
        fillAmplitudes(*this, root_, rootWeight_, 0, radix_, amps);
    }
    return StateVector{radix_.dimensions(), std::move(amps)};
}

double DecisionDiagram::fidelityWith(const StateVector& target) const {
    return target.fidelityWith(toStateVector());
}

Complex DecisionDiagram::innerProductWith(const DecisionDiagram& other) const {
    requireThat(radix_ == other.radix_,
                "DecisionDiagram::innerProductWith: registers differ");
    if (root_ == kNoNode || other.root_ == kNoNode) {
        return Complex{0.0, 0.0};
    }
    // <a|b> over node pairs, memoized: the contribution of a pair of
    // sub-trees is independent of the path that reached them. When both
    // diagrams live on one session store, ref equality is structural
    // equality of *canonical* (norm-1) sub-trees, so <x|x> collapses to 1
    // without descending — session verification of an exactly-reproduced
    // target is O(depth), not O(diagram^2) — and the remaining pairs go
    // through the session's operation cache, which persists across calls
    // (repeated verifications of the same states hit instead of re-walking).
    const bool sharedCanonical = sharesStoreWith(other) && store_->interning();
    dd::ComputeCache* cache = sharedCanonical ? &store_->computeCache() : nullptr;
    std::unordered_map<std::uint64_t, Complex> memo;
    const std::function<Complex(NodeRef, NodeRef)> visit = [&](NodeRef a,
                                                               NodeRef b) -> Complex {
        const DDNode& na = node(a);
        const DDNode& nb = other.node(b);
        if (na.isTerminal()) {
            ensureThat(nb.isTerminal(), "innerProductWith: level mismatch");
            return Complex{1.0, 0.0};
        }
        if (sharedCanonical && a == b) {
            return Complex{1.0, 0.0};
        }
        ensureThat(na.site == nb.site, "innerProductWith: site mismatch");
        const std::uint64_t key =
            (static_cast<std::uint64_t>(a) << 32U) | static_cast<std::uint64_t>(b);
        if (const auto it = memo.find(key); it != memo.end()) {
            return it->second;
        }
        if (cache != nullptr) {
            if (const auto hit =
                    cache->lookup(dd::ComputeCache::Op::InnerProduct, a, b, Complex{})) {
                memo.emplace(key, hit->value);
                return hit->value;
            }
        }
        Complex sum{0.0, 0.0};
        for (std::size_t k = 0; k < na.edges.size(); ++k) {
            const DDEdge& ea = na.edges[k];
            const DDEdge& eb = nb.edges[k];
            if (ea.isZeroStub() || eb.isZeroStub()) {
                continue;
            }
            sum += std::conj(ea.weight) * eb.weight * visit(ea.node, eb.node);
        }
        memo.emplace(key, sum);
        if (cache != nullptr) {
            cache->store(dd::ComputeCache::Op::InnerProduct, a, b, Complex{},
                         dd::ComputeCache::Result{kNoNode, sum});
        }
        return sum;
    };
    return std::conj(rootWeight_) * other.rootWeight_ * visit(root_, other.root_);
}

double DecisionDiagram::normSquared() const {
    if (root_ == kNoNode) {
        return 0.0;
    }
    // Sum of |amplitude|^2 over all paths, memoized per node (shared
    // sub-trees contribute once per incoming weight) — no dense expansion,
    // so this stays cheap on registers past the dense ceiling.
    std::unordered_map<NodeRef, double> memo;
    const std::function<double(NodeRef)> visit = [&](NodeRef ref) -> double {
        const DDNode& n = node(ref);
        if (n.isTerminal()) {
            return 1.0;
        }
        if (const auto it = memo.find(ref); it != memo.end()) {
            return it->second;
        }
        double sum = 0.0;
        for (const DDEdge& edge : n.edges) {
            if (!edge.isZeroStub()) {
                sum += squaredMagnitude(edge.weight) * visit(edge.node);
            }
        }
        memo.emplace(ref, sum);
        return sum;
    };
    return squaredMagnitude(rootWeight_) * visit(root_);
}

void DecisionDiagram::forEachNonZero(
    const std::function<bool(const Digits&, const Complex&)>& visitor) const {
    if (root_ == kNoNode) {
        return;
    }
    Digits digits(radix_.numQudits(), 0);
    // DFS over nonzero edges in digit order == flat mixed-radix index order,
    // the order a dense enumeration would visit. Returns false to stop.
    const std::function<bool(NodeRef, Complex)> visit = [&](NodeRef ref,
                                                            Complex prefix) -> bool {
        const DDNode& n = node(ref);
        if (n.isTerminal()) {
            return visitor(digits, prefix);
        }
        for (std::size_t k = 0; k < n.edges.size(); ++k) {
            const DDEdge& edge = n.edges[k];
            if (edge.isZeroStub()) {
                continue;
            }
            digits[n.site] = static_cast<Level>(k);
            if (!visit(edge.node, prefix * edge.weight)) {
                return false;
            }
        }
        digits[n.site] = 0;
        return true;
    };
    (void)visit(root_, rootWeight_);
}

} // namespace mqsp
