#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace mqsp {

// Format:
//   mqsp-dd v1
//   dims <d0> <d1> ...
//   root <nodeRef> <re> <im>
//   node <ref> <site> <numEdges> { <childRef|-> <re> <im> <pruned01> } ...
//   end
// Node references are pool indices; the terminal is always pool slot 0 and
// is not listed. An absent root is encoded as "root - 0 0".

void DecisionDiagram::serialize(std::ostream& out) const {
    if (store_ != nullptr && store_->interning()) {
        // A session-backed diagram shares its pool with every other diagram
        // of the session; serialize a reachable-only private copy instead
        // of dumping the whole session store.
        compactedCopy().serialize(out);
        return;
    }
    out << "mqsp-dd v1\n";
    out << "dims";
    for (const auto dim : radix_.dimensions()) {
        out << ' ' << dim;
    }
    out << '\n';
    out << std::setprecision(17);
    if (root_ == kNoNode) {
        out << "root - 0 0\n";
    } else {
        out << "root " << root_ << ' ' << rootWeight_.real() << ' ' << rootWeight_.imag()
            << '\n';
    }
    for (std::size_t ref = 1; ref < poolSize(); ++ref) {
        const DDNode& n = node(static_cast<NodeRef>(ref));
        out << "node " << ref << ' ' << n.site << ' ' << n.edges.size();
        for (const auto& edge : n.edges) {
            out << ' ';
            if (edge.isZeroStub()) {
                out << '-';
            } else {
                out << edge.node;
            }
            out << ' ' << edge.weight.real() << ' ' << edge.weight.imag() << ' '
                << (edge.pruned ? 1 : 0);
        }
        out << '\n';
    }
    out << "end\n";
}

DecisionDiagram DecisionDiagram::deserialize(std::istream& in) {
    std::string line;
    requireThat(static_cast<bool>(std::getline(in, line)) && line == "mqsp-dd v1",
                "DecisionDiagram::deserialize: bad magic line");

    requireThat(static_cast<bool>(std::getline(in, line)) && line.rfind("dims", 0) == 0,
                "DecisionDiagram::deserialize: missing dims line");
    Dimensions dims;
    {
        std::istringstream stream(line.substr(4));
        Dimension dim = 0;
        while (stream >> dim) {
            dims.push_back(dim);
        }
    }
    requireThat(!dims.empty(), "DecisionDiagram::deserialize: empty register");

    DecisionDiagram dd;
    dd.radix_ = MixedRadix(dims);
    dd.ensureStore();

    requireThat(static_cast<bool>(std::getline(in, line)) && line.rfind("root", 0) == 0,
                "DecisionDiagram::deserialize: missing root line");
    {
        std::istringstream stream(line.substr(4));
        std::string refText;
        double re = 0.0;
        double im = 0.0;
        requireThat(static_cast<bool>(stream >> refText >> re >> im),
                    "DecisionDiagram::deserialize: malformed root line");
        if (refText == "-") {
            dd.root_ = kNoNode;
        } else {
            dd.root_ = static_cast<NodeRef>(std::stoul(refText));
        }
        dd.rootWeight_ = Complex{re, im};
    }

    while (std::getline(in, line)) {
        if (line == "end") {
            // Validate all references now that the pool is complete.
            for (std::size_t ref = 0; ref < dd.poolSize(); ++ref) {
                for (const auto& edge : dd.node(static_cast<NodeRef>(ref)).edges) {
                    requireThat(edge.isZeroStub() || edge.node < dd.poolSize(),
                                "DecisionDiagram::deserialize: dangling node reference");
                }
            }
            requireThat(dd.root_ == kNoNode || dd.root_ < dd.poolSize(),
                        "DecisionDiagram::deserialize: dangling root reference");
            return dd;
        }
        requireThat(line.rfind("node", 0) == 0,
                    "DecisionDiagram::deserialize: unexpected line: " + line);
        std::istringstream stream(line.substr(4));
        std::size_t ref = 0;
        std::uint32_t site = 0;
        std::size_t numEdges = 0;
        requireThat(static_cast<bool>(stream >> ref >> site >> numEdges),
                    "DecisionDiagram::deserialize: malformed node line");
        requireThat(ref == dd.poolSize(),
                    "DecisionDiagram::deserialize: nodes must be listed in pool order");
        requireThat(site < dims.size(), "DecisionDiagram::deserialize: site out of range");
        requireThat(numEdges == dims[site],
                    "DecisionDiagram::deserialize: edge count does not match dimension");
        DDNode n;
        n.site = site;
        n.edges.resize(numEdges);
        for (auto& edge : n.edges) {
            std::string refText;
            double re = 0.0;
            double im = 0.0;
            int pruned = 0;
            requireThat(static_cast<bool>(stream >> refText >> re >> im >> pruned),
                        "DecisionDiagram::deserialize: malformed edge");
            if (refText == "-") {
                edge = DDEdge{kNoNode, Complex{0.0, 0.0}, pruned != 0};
            } else {
                edge = DDEdge{static_cast<NodeRef>(std::stoul(refText)), Complex{re, im},
                              pruned != 0};
            }
        }
        (void)dd.allocate(n.site, std::move(n.edges));
    }
    detail::throwInvalidArgument("DecisionDiagram::deserialize: missing end line");
}

} // namespace mqsp
