#include "mqsp/dd/unique_table.hpp"

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <utility>

namespace mqsp::dd {

// --- UniqueTable -----------------------------------------------------------

namespace {

/// splitmix64-style finalizer: cheap, well-distributed for sequential refs.
[[nodiscard]] std::uint64_t mix64(std::uint64_t v) noexcept {
    v += 0x9e3779b97f4a7c15ULL;
    v = (v ^ (v >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27U)) * 0x94d049bb133111ebULL;
    return v ^ (v >> 31U);
}

[[nodiscard]] std::size_t roundUpPowerOfTwo(std::size_t v) noexcept {
    std::size_t cap = 1;
    while (cap < v) {
        cap <<= 1U;
    }
    return cap;
}

} // namespace

UniqueTable::UniqueTable(double tolerance, std::size_t initialCapacity)
    : tolerance_(tolerance),
      initialCapacity_(roundUpPowerOfTwo(std::max<std::size_t>(initialCapacity, 16))) {
    requireThat(tolerance > 0.0, "UniqueTable: tolerance must be positive");
}

std::int64_t UniqueTable::bucketOf(double value, double tolerance) {
    return static_cast<std::int64_t>(std::llround(value / tolerance));
}

std::uint64_t UniqueTable::hashKey(std::uint32_t site, const NodeRef* children,
                                   const std::int64_t* re, const std::int64_t* im,
                                   std::size_t arity) const noexcept {
    std::uint64_t h = mix64(site);
    for (std::size_t k = 0; k < arity; ++k) {
        h = mix64(h ^ children[k]);
        h = mix64(h ^ static_cast<std::uint64_t>(re[k]));
        h = mix64(h ^ static_cast<std::uint64_t>(im[k]));
    }
    return h;
}

bool UniqueTable::entryMatches(std::uint32_t entry, std::uint32_t site,
                               const NodeRef* children, const std::int64_t* re,
                               const std::int64_t* im, std::size_t arity) const noexcept {
    if (entrySite_[entry] != site || entryArity_[entry] != arity) {
        return false;
    }
    const std::uint64_t offset = entryOffset_[entry];
    for (std::size_t k = 0; k < arity; ++k) {
        if (keyChildren_[offset + k] != children[k] || keyRe_[offset + k] != re[k] ||
            keyIm_[offset + k] != im[k]) {
            return false;
        }
    }
    return true;
}

void UniqueTable::grow() {
    const std::size_t capacity = slots_.empty() ? initialCapacity_ : slots_.size() * 2;
    slots_.assign(capacity, 0);
    if (!entryHash_.empty()) {
        ++stats_.grows;
    }
    const std::size_t mask = capacity - 1;
    for (std::uint32_t entry = 0; entry < entryHash_.size(); ++entry) {
        std::size_t slot = static_cast<std::size_t>(entryHash_[entry]) & mask;
        while (slots_[slot] != 0) {
            slot = (slot + 1) & mask;
        }
        slots_[slot] = entry + 1;
    }
}

NodeRef UniqueTable::findOrInsertRaw(std::uint32_t site, const NodeRef* children,
                                     const Complex* weights, std::size_t arity,
                                     NodeRef fresh) {
    scratchChildren_.resize(arity);
    scratchRe_.resize(arity);
    scratchIm_.resize(arity);
    for (std::size_t k = 0; k < arity; ++k) {
        scratchChildren_[k] = children[k];
        scratchRe_[k] = bucketOf(weights[k].real(), tolerance_);
        scratchIm_[k] = bucketOf(weights[k].imag(), tolerance_);
    }
    return probe(site, arity, fresh);
}

NodeRef UniqueTable::findOrInsert(std::uint32_t site, const std::vector<DDEdge>& edges,
                                  NodeRef fresh) {
    const std::size_t arity = edges.size();
    scratchChildren_.resize(arity);
    scratchRe_.resize(arity);
    scratchIm_.resize(arity);
    for (std::size_t k = 0; k < arity; ++k) {
        scratchChildren_[k] = edges[k].node;
        scratchRe_[k] = bucketOf(edges[k].weight.real(), tolerance_);
        scratchIm_[k] = bucketOf(edges[k].weight.imag(), tolerance_);
    }
    return probe(site, arity, fresh);
}

NodeRef UniqueTable::probe(std::uint32_t site, std::size_t arity, NodeRef fresh) {
    // Grow ahead of the insert that would cross the 0.7 load factor (the
    // first lookup allocates the initial slot array).
    if (slots_.empty() || (entryHash_.size() + 1) * 10 >= slots_.size() * 7) {
        grow();
    }
    const std::uint64_t hash =
        hashKey(site, scratchChildren_.data(), scratchRe_.data(), scratchIm_.data(), arity);
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    ++stats_.lookups;
    while (slots_[slot] != 0) {
        const std::uint32_t entry = slots_[slot] - 1;
        if (entryHash_[entry] == hash &&
            entryMatches(entry, site, scratchChildren_.data(), scratchRe_.data(),
                         scratchIm_.data(), arity)) {
            ++stats_.hits;
            return entryValue_[entry];
        }
        ++stats_.probeSteps;
        slot = (slot + 1) & mask;
    }
    if (fresh == kNoNode) {
        // Pure lookup: report the miss without recording a key.
        ++stats_.misses;
        return kNoNode;
    }
    ++stats_.misses;
    const std::uint64_t offset = keyChildren_.size();
    keyChildren_.insert(keyChildren_.end(), scratchChildren_.begin(), scratchChildren_.end());
    keyRe_.insert(keyRe_.end(), scratchRe_.begin(), scratchRe_.end());
    keyIm_.insert(keyIm_.end(), scratchIm_.begin(), scratchIm_.end());
    entryHash_.push_back(hash);
    entrySite_.push_back(site);
    entryValue_.push_back(fresh);
    entryOffset_.push_back(offset);
    entryArity_.push_back(static_cast<std::uint32_t>(arity));
    slots_[slot] = static_cast<std::uint32_t>(entryHash_.size());
    return fresh;
}

// --- ComputeCache ----------------------------------------------------------

ComputeCache::ComputeCache(double tolerance, std::size_t slots)
    : tolerance_(tolerance), slotCount_(roundUpPowerOfTwo(slots)) {}

std::size_t ComputeCache::slotOf(Op op, NodeRef x, NodeRef y, std::int64_t re,
                                 std::int64_t im) const noexcept {
    std::uint64_t h = mix64((static_cast<std::uint64_t>(x) << 32U) | y);
    h = mix64(h ^ static_cast<std::uint64_t>(re));
    h = mix64(h ^ static_cast<std::uint64_t>(im));
    h = mix64(h ^ static_cast<std::uint64_t>(op));
    return static_cast<std::size_t>(h) & (slotCount_ - 1);
}

const ComputeCache::Result* ComputeCache::lookup(Op op, NodeRef x, NodeRef y,
                                                 const Complex& ratio) {
    ++stats_.lookups;
    if (entries_.empty()) {
        ++stats_.misses;
        return nullptr;
    }
    const std::int64_t re = UniqueTable::bucketOf(ratio.real(), tolerance_);
    const std::int64_t im = UniqueTable::bucketOf(ratio.imag(), tolerance_);
    const Entry& entry = entries_[slotOf(op, x, y, re, im)];
    if (entry.valid && entry.op == op && entry.x == x && entry.y == y &&
        entry.ratioRe == re && entry.ratioIm == im) {
        ++stats_.hits;
        return &entry.result;
    }
    ++stats_.misses;
    return nullptr;
}

void ComputeCache::store(Op op, NodeRef x, NodeRef y, const Complex& ratio,
                         const Result& result) {
    if (entries_.empty()) {
        entries_.resize(slotCount_);
    }
    const std::int64_t re = UniqueTable::bucketOf(ratio.real(), tolerance_);
    const std::int64_t im = UniqueTable::bucketOf(ratio.imag(), tolerance_);
    Entry& entry = entries_[slotOf(op, x, y, re, im)];
    if (entry.valid) {
        ++stats_.evictions;
    }
    entry = Entry{x, y, re, im, result, op, true};
}

// --- DdNodeStore -----------------------------------------------------------

DdNodeStore::DdNodeStore(Mode mode, double tolerance)
    : mode_(mode), tolerance_(tolerance), table_(tolerance), computeCache_(tolerance) {
    // Pool slot 0 is the unique terminal node.
    nodes_.push_back(DDNode{DDNode::kTerminalSite, {}});
}

const DDNode& DdNodeStore::node(NodeRef ref) const {
    requireThat(ref < nodes_.size(), "DecisionDiagram::node: invalid reference");
    return nodes_[ref];
}

DDNode& DdNodeStore::mutableNode(NodeRef ref) {
    requireThat(!interning(),
                "DdNodeStore: in-place node mutation is forbidden on a session-shared "
                "(interning) store — detach the diagram first");
    requireThat(ref < nodes_.size(), "DecisionDiagram::node: invalid reference");
    return nodes_[ref];
}

NodeRef DdNodeStore::allocate(std::uint32_t site, std::vector<DDEdge> edges) {
    nodes_.push_back(DDNode{site, std::move(edges)});
    ensureThat(nodes_.size() - 1 < kNoNode, "DecisionDiagram: node pool exhausted");
    const auto fresh = static_cast<NodeRef>(nodes_.size() - 1);
    if (!interning()) {
        return fresh;
    }
    // Tentatively appended; one probe either records it as canonical or
    // finds the existing twin, in which case the tail node (referenced by
    // nobody yet) is simply popped again — no garbage, no double hashing.
    const NodeRef canonical = table_.findOrInsert(site, nodes_.back().edges, fresh);
    if (canonical != fresh) {
        nodes_.pop_back();
    }
    return canonical;
}

void DdNodeStore::replaceNodes(std::vector<DDNode> nodes) {
    requireThat(!interning(),
                "DdNodeStore: pool replacement is forbidden on a session-shared store");
    nodes_ = std::move(nodes);
}

// --- DdSession -------------------------------------------------------------

DdSession::DdSession(double tolerance)
    : store_(std::make_shared<DdNodeStore>(DdNodeStore::Mode::Interning, tolerance)) {}

DecisionDiagram DdSession::zeroState(const Dimensions& dims) const {
    return basisState(dims, Digits(MixedRadix(dims).numQudits(), 0));
}

DecisionDiagram DdSession::basisState(const Dimensions& dims, const Digits& digits) const {
    return DecisionDiagram::basisStateOn(store_, dims, digits);
}

DecisionDiagram DdSession::ghzState(const Dimensions& dims) const {
    return DecisionDiagram::ghzStateOn(store_, dims);
}

DecisionDiagram DdSession::wState(const Dimensions& dims) const {
    return DecisionDiagram::wStateOn(store_, dims, /*familyTag=*/0);
}

DecisionDiagram DdSession::embeddedWState(const Dimensions& dims) const {
    return DecisionDiagram::wStateOn(store_, dims, /*familyTag=*/1);
}

DecisionDiagram DdSession::uniformState(const Dimensions& dims) const {
    return DecisionDiagram::uniformStateOn(store_, dims);
}

DecisionDiagram DdSession::cyclicState(const Dimensions& dims, const Digits& start,
                                       std::uint32_t count) const {
    return DecisionDiagram::cyclicStateOn(store_, dims, start, count);
}

DecisionDiagram DdSession::dickeState(const Dimensions& dims, std::uint64_t weight) const {
    return DecisionDiagram::dickeStateOn(store_, dims, weight);
}

DecisionDiagram DdSession::simulate(const Circuit& circuit) const {
    return DecisionDiagram::simulateCircuitOn(store_, circuit);
}

DecisionDiagram DdSession::intern(const DecisionDiagram& diagram) const {
    if (diagram.store_ == store_) {
        return diagram; // already session-backed: O(1) aliasing copy
    }
    DecisionDiagram result(store_, diagram.dimensions());
    if (diagram.rootNode() == kNoNode) {
        return result;
    }
    // Bottom-up memoized rebuild through the session table: sub-trees the
    // session has seen before come back as table hits.
    std::unordered_map<NodeRef, NodeRef> memo;
    const std::function<NodeRef(NodeRef)> visit = [&](NodeRef ref) -> NodeRef {
        if (diagram.node(ref).isTerminal()) {
            return 0;
        }
        if (const auto it = memo.find(ref); it != memo.end()) {
            return it->second;
        }
        // Copy the shape up front: the source node reference must not be
        // held across the allocating recursion below.
        const std::uint32_t site = diagram.node(ref).site;
        std::vector<DDEdge> edges = diagram.node(ref).edges;
        for (auto& edge : edges) {
            if (!edge.isZeroStub()) {
                edge.node = visit(edge.node);
            }
        }
        const NodeRef canonical = store_->allocate(site, std::move(edges));
        memo.emplace(ref, canonical);
        return canonical;
    };
    result.root_ = visit(diagram.rootNode());
    result.rootWeight_ = diagram.rootWeight();
    return result;
}

DdSessionStats DdSession::stats() const noexcept {
    DdSessionStats stats;
    stats.poolNodes = store_->size();
    stats.unique = store_->uniqueTable().stats();
    stats.cache = store_->computeCache().stats();
    return stats;
}

void DdSession::resetStats() noexcept {
    store_->uniqueTable().resetStats();
    store_->computeCache().resetStats();
}

} // namespace mqsp::dd
