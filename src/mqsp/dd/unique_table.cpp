#include "mqsp/dd/unique_table.hpp"

#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace mqsp::dd {

// --- UniqueTable -----------------------------------------------------------

namespace {

/// splitmix64-style finalizer: cheap, well-distributed for sequential refs.
[[nodiscard]] std::uint64_t mix64(std::uint64_t v) noexcept {
    v += 0x9e3779b97f4a7c15ULL;
    v = (v ^ (v >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27U)) * 0x94d049bb133111ebULL;
    return v ^ (v >> 31U);
}

[[nodiscard]] std::size_t roundUpPowerOfTwo(std::size_t v) noexcept {
    std::size_t cap = 1;
    while (cap < v) {
        cap <<= 1U;
    }
    return cap;
}

[[nodiscard]] std::uint64_t hashKey(std::uint32_t site, const NodeRef* children,
                                    const std::int64_t* re, const std::int64_t* im,
                                    std::size_t arity) noexcept {
    std::uint64_t h = mix64(site);
    for (std::size_t k = 0; k < arity; ++k) {
        h = mix64(h ^ children[k]);
        h = mix64(h ^ static_cast<std::uint64_t>(re[k]));
        h = mix64(h ^ static_cast<std::uint64_t>(im[k]));
    }
    return h;
}

/// Per-thread scratch for the bucketed key being probed. Thread-local (not
/// per-table members) so concurrent interners never share buffers; one
/// buffer set serves every table a thread touches, since a key is consumed
/// within the findOrInsert call that built it.
struct ScratchKey {
    std::vector<NodeRef> children;
    std::vector<std::int64_t> re;
    std::vector<std::int64_t> im;
};
thread_local ScratchKey tlsScratch;

} // namespace

UniqueTable::UniqueTable(double tolerance, std::size_t initialCapacity, Concurrency concurrency)
    : tolerance_(tolerance),
      initialShardCapacity_(roundUpPowerOfTwo(
          std::max<std::size_t>(initialCapacity / kShardCount, 16))),
      sharded_(concurrency == Concurrency::Sharded) {
    requireThat(tolerance > 0.0, "UniqueTable: tolerance must be positive");
}

std::int64_t UniqueTable::bucketOf(double value, double tolerance) {
    return static_cast<std::int64_t>(std::llround(value / tolerance));
}

bool UniqueTable::entryMatches(const Shard& shard, std::uint32_t entry, std::uint32_t site,
                               const NodeRef* children, const std::int64_t* re,
                               const std::int64_t* im, std::size_t arity) noexcept {
    if (shard.entrySite[entry] != site || shard.entryArity[entry] != arity) {
        return false;
    }
    const std::uint64_t offset = shard.entryOffset[entry];
    for (std::size_t k = 0; k < arity; ++k) {
        if (shard.keyChildren[offset + k] != children[k] || shard.keyRe[offset + k] != re[k] ||
            shard.keyIm[offset + k] != im[k]) {
            return false;
        }
    }
    return true;
}

void UniqueTable::growShard(Shard& shard) {
    const std::size_t capacity =
        shard.slots.empty() ? initialShardCapacity_ : shard.slots.size() * 2;
    shard.slots.assign(capacity, 0);
    if (!shard.entryHash.empty()) {
        ++shard.stats.grows;
    }
    const std::size_t mask = capacity - 1;
    for (std::uint32_t entry = 0; entry < shard.entryHash.size(); ++entry) {
        std::size_t slot = static_cast<std::size_t>(shard.entryHash[entry]) & mask;
        while (shard.slots[slot] != 0) {
            slot = (slot + 1) & mask;
        }
        shard.slots[slot] = entry + 1;
    }
}

NodeRef UniqueTable::probeShard(Shard& shard, std::uint64_t hash, std::uint32_t site,
                                const NodeRef* children, const std::int64_t* re,
                                const std::int64_t* im, std::size_t arity, NodeRef fresh,
                                const detail::MakeNodeFnRef* makeFresh) {
    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    if (sharded_) {
        lock.lock();
    }
    // Grow ahead of the insert that would cross the 0.7 load factor (the
    // first lookup allocates the initial slot array).
    if (shard.slots.empty() || (shard.entryHash.size() + 1) * 10 >= shard.slots.size() * 7) {
        growShard(shard);
    }
    const std::size_t mask = shard.slots.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    ++shard.stats.lookups;
    while (shard.slots[slot] != 0) {
        const std::uint32_t entry = shard.slots[slot] - 1;
        if (shard.entryHash[entry] == hash &&
            entryMatches(shard, entry, site, children, re, im, arity)) {
            ++shard.stats.hits;
            return shard.entryValue[entry];
        }
        ++shard.stats.probeSteps;
        slot = (slot + 1) & mask;
    }
    ++shard.stats.misses;
    if (makeFresh == nullptr && fresh == kNoNode) {
        // Pure lookup: report the miss without recording a key.
        return kNoNode;
    }
    // Allocate under the shard lock (concurrent protocol) or take the
    // caller's tentative node (single-threaded protocol); either way the
    // key copy below happens before the lock is released, so the next
    // prober of this key sees the canonical entry.
    const NodeRef value = makeFresh != nullptr ? (*makeFresh)() : fresh;
    const std::uint64_t offset = shard.keyChildren.size();
    shard.keyChildren.insert(shard.keyChildren.end(), children, children + arity);
    shard.keyRe.insert(shard.keyRe.end(), re, re + arity);
    shard.keyIm.insert(shard.keyIm.end(), im, im + arity);
    shard.entryHash.push_back(hash);
    shard.entrySite.push_back(site);
    shard.entryValue.push_back(value);
    shard.entryOffset.push_back(offset);
    shard.entryArity.push_back(static_cast<std::uint32_t>(arity));
    shard.slots[slot] = static_cast<std::uint32_t>(shard.entryHash.size());
    return value;
}

NodeRef UniqueTable::dispatch(std::uint32_t site, const NodeRef* children,
                              const Complex* weights, const DDEdge* edges, std::size_t arity,
                              NodeRef fresh, const detail::MakeNodeFnRef* makeFresh) {
    ScratchKey& scratch = tlsScratch;
    scratch.children.resize(arity);
    scratch.re.resize(arity);
    scratch.im.resize(arity);
    for (std::size_t k = 0; k < arity; ++k) {
        const NodeRef child = edges != nullptr ? edges[k].node : children[k];
        const Complex weight = edges != nullptr ? edges[k].weight : weights[k];
        scratch.children[k] = child;
        scratch.re[k] = bucketOf(weight.real(), tolerance_);
        scratch.im[k] = bucketOf(weight.imag(), tolerance_);
    }
    const std::uint64_t hash =
        hashKey(site, scratch.children.data(), scratch.re.data(), scratch.im.data(), arity);
    Shard& shard = shards_[(hash >> 60U) & (kShardCount - 1)];
    return probeShard(shard, hash, site, scratch.children.data(), scratch.re.data(),
                      scratch.im.data(), arity, fresh, makeFresh);
}

NodeRef UniqueTable::findOrInsert(std::uint32_t site, const std::vector<DDEdge>& edges,
                                  NodeRef fresh) {
    return dispatch(site, nullptr, nullptr, edges.data(), edges.size(), fresh, nullptr);
}

NodeRef UniqueTable::findOrInsertRaw(std::uint32_t site, const NodeRef* children,
                                     const Complex* weights, std::size_t arity, NodeRef fresh) {
    return dispatch(site, children, weights, nullptr, arity, fresh, nullptr);
}

NodeRef UniqueTable::findOrInsert(std::uint32_t site, const std::vector<DDEdge>& edges,
                                  const detail::MakeNodeFnRef& makeFresh) {
    return dispatch(site, nullptr, nullptr, edges.data(), edges.size(), kNoNode, &makeFresh);
}

NodeRef UniqueTable::findOrInsertRaw(std::uint32_t site, const NodeRef* children,
                                     const Complex* weights, std::size_t arity,
                                     const detail::MakeNodeFnRef& makeFresh) {
    return dispatch(site, children, weights, nullptr, arity, kNoNode, &makeFresh);
}

void UniqueTable::clear() {
    for (Shard& shard : shards_) {
        std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
        if (sharded_) {
            lock.lock();
        }
        // Keep the slot capacity (the rebuild re-inserts into a table of
        // comparable size) and the cumulative stats (a GC is not a reset
        // of the session's history).
        std::fill(shard.slots.begin(), shard.slots.end(), 0);
        shard.entryHash.clear();
        shard.entrySite.clear();
        shard.entryValue.clear();
        shard.entryOffset.clear();
        shard.entryArity.clear();
        shard.keyChildren.clear();
        shard.keyRe.clear();
        shard.keyIm.clear();
    }
}

void UniqueTable::restoreCanonical(std::uint32_t site, const std::vector<DDEdge>& edges,
                                   NodeRef value) {
    ScratchKey& scratch = tlsScratch;
    const std::size_t arity = edges.size();
    scratch.children.resize(arity);
    scratch.re.resize(arity);
    scratch.im.resize(arity);
    for (std::size_t k = 0; k < arity; ++k) {
        scratch.children[k] = edges[k].node;
        scratch.re[k] = bucketOf(edges[k].weight.real(), tolerance_);
        scratch.im[k] = bucketOf(edges[k].weight.imag(), tolerance_);
    }
    const std::uint64_t hash =
        hashKey(site, scratch.children.data(), scratch.re.data(), scratch.im.data(), arity);
    Shard& shard = shards_[(hash >> 60U) & (kShardCount - 1)];
    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    if (sharded_) {
        lock.lock();
    }
    if (shard.slots.empty() || (shard.entryHash.size() + 1) * 10 >= shard.slots.size() * 7) {
        growShard(shard);
    }
    const std::size_t mask = shard.slots.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    while (shard.slots[slot] != 0) {
        slot = (slot + 1) & mask;
    }
    const std::uint64_t offset = shard.keyChildren.size();
    shard.keyChildren.insert(shard.keyChildren.end(), scratch.children.begin(),
                             scratch.children.end());
    shard.keyRe.insert(shard.keyRe.end(), scratch.re.begin(), scratch.re.end());
    shard.keyIm.insert(shard.keyIm.end(), scratch.im.begin(), scratch.im.end());
    shard.entryHash.push_back(hash);
    shard.entrySite.push_back(site);
    shard.entryValue.push_back(value);
    shard.entryOffset.push_back(offset);
    shard.entryArity.push_back(static_cast<std::uint32_t>(arity));
    shard.slots[slot] = static_cast<std::uint32_t>(shard.entryHash.size());
}

UniqueTableStats UniqueTable::stats() const {
    UniqueTableStats total;
    for (const Shard& shard : shards_) {
        std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
        if (sharded_) {
            lock.lock();
        }
        total.lookups += shard.stats.lookups;
        total.hits += shard.stats.hits;
        total.misses += shard.stats.misses;
        total.probeSteps += shard.stats.probeSteps;
        total.grows += shard.stats.grows;
    }
    return total;
}

std::size_t UniqueTable::size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
        if (sharded_) {
            lock.lock();
        }
        total += shard.entryHash.size();
    }
    return total;
}

std::size_t UniqueTable::capacity() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
        if (sharded_) {
            lock.lock();
        }
        total += shard.slots.size();
    }
    return total;
}

void UniqueTable::resetStats() {
    for (Shard& shard : shards_) {
        std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
        if (sharded_) {
            lock.lock();
        }
        shard.stats = UniqueTableStats{};
    }
}

// --- ComputeCache ----------------------------------------------------------

ComputeCache::ComputeCache(double tolerance, std::size_t slots)
    : tolerance_(tolerance),
      slotCount_(roundUpPowerOfTwo(slots)),
      stripeMask_(std::min(kMaxStripes, slotCount_) - 1) {}

std::size_t ComputeCache::slotOf(Op op, NodeRef x, NodeRef y, std::int64_t re,
                                 std::int64_t im) const noexcept {
    std::uint64_t h = mix64((static_cast<std::uint64_t>(x) << 32U) | y);
    h = mix64(h ^ static_cast<std::uint64_t>(re));
    h = mix64(h ^ static_cast<std::uint64_t>(im));
    h = mix64(h ^ static_cast<std::uint64_t>(op));
    return static_cast<std::size_t>(h) & (slotCount_ - 1);
}

void ComputeCache::ensureAllocated() {
    if (allocated_.load(std::memory_order_acquire)) {
        return;
    }
    const std::lock_guard<std::mutex> lock(allocMutex_);
    if (!allocated_.load(std::memory_order_relaxed)) {
        entries_ = std::make_unique<Entry[]>(slotCount_);
        stripes_ = std::make_unique<std::mutex[]>(stripeMask_ + 1);
        // Release: the arrays are fully constructed before any thread that
        // observes allocated_ == true dereferences them.
        allocated_.store(true, std::memory_order_release);
    }
}

std::optional<ComputeCache::Result> ComputeCache::lookup(Op op, NodeRef x, NodeRef y,
                                                         const Complex& ratio) {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    if (!allocated_.load(std::memory_order_acquire)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    const std::int64_t re = UniqueTable::bucketOf(ratio.real(), tolerance_);
    const std::int64_t im = UniqueTable::bucketOf(ratio.imag(), tolerance_);
    const std::size_t slot = slotOf(op, x, y, re, im);
    std::optional<Result> result;
    {
        const std::lock_guard<std::mutex> lock(stripes_[slot & stripeMask_]);
        const Entry& entry = entries_[slot];
        if (entry.valid && entry.op == op && entry.x == x && entry.y == y &&
            entry.ratioRe == re && entry.ratioIm == im) {
            result = entry.result;
        }
    }
    if (result.has_value()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
}

void ComputeCache::store(Op op, NodeRef x, NodeRef y, const Complex& ratio,
                         const Result& result) {
    ensureAllocated();
    const std::int64_t re = UniqueTable::bucketOf(ratio.real(), tolerance_);
    const std::int64_t im = UniqueTable::bucketOf(ratio.imag(), tolerance_);
    const std::size_t slot = slotOf(op, x, y, re, im);
    bool evicted = false;
    {
        const std::lock_guard<std::mutex> lock(stripes_[slot & stripeMask_]);
        Entry& entry = entries_[slot];
        evicted = entry.valid;
        entry = Entry{x, y, re, im, result, op, true};
    }
    if (evicted) {
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::uint64_t ComputeCache::compact(const std::vector<NodeRef>& remap) {
    if (!allocated_.load(std::memory_order_acquire)) {
        return 0;
    }
    // Single-threaded (session GC runs at quiescence). Survivors must be
    // re-slotted: a slot index hashes the node refs, so an entry rewritten
    // in place would never be found under its new key.
    const auto mapped = [&remap](NodeRef ref) -> NodeRef {
        if (ref == kNoNode) {
            return kNoNode;
        }
        return ref < remap.size() ? remap[ref] : kNoNode;
    };
    std::uint64_t evicted = 0;
    std::vector<Entry> survivors;
    for (std::size_t slot = 0; slot < slotCount_; ++slot) {
        Entry& entry = entries_[slot];
        if (!entry.valid) {
            continue;
        }
        const NodeRef x = mapped(entry.x);
        const NodeRef y = mapped(entry.y);
        const NodeRef node = mapped(entry.result.node);
        const bool dead = (entry.x != kNoNode && x == kNoNode) ||
                          (entry.y != kNoNode && y == kNoNode) ||
                          (entry.result.node != kNoNode && node == kNoNode);
        if (dead) {
            ++evicted;
        } else {
            Entry survivor = entry;
            survivor.x = x;
            survivor.y = y;
            survivor.result.node = node;
            survivors.push_back(survivor);
        }
        entry = Entry{};
    }
    for (const Entry& survivor : survivors) {
        const std::size_t slot = slotOf(survivor.op, survivor.x, survivor.y, survivor.ratioRe,
                                        survivor.ratioIm);
        if (entries_[slot].valid) {
            ++evicted; // two survivors re-slotted to the same bucket
        }
        entries_[slot] = survivor;
    }
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    return evicted;
}

ComputeCacheStats ComputeCache::stats() const noexcept {
    ComputeCacheStats stats;
    stats.lookups = lookups_.load(std::memory_order_relaxed);
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    return stats;
}

void ComputeCache::resetStats() noexcept {
    lookups_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
}

// --- DdNodeStore -----------------------------------------------------------

DdNodeStore::DdNodeStore(Mode mode, double tolerance)
    : mode_(mode),
      tolerance_(tolerance),
      table_(tolerance, /*initialCapacity=*/256,
             mode == Mode::Interning ? UniqueTable::Concurrency::Sharded
                                     : UniqueTable::Concurrency::Serial),
      computeCache_(tolerance) {
    // Pool slot 0 is the unique terminal node.
    pool_.append(DDNode{DDNode::kTerminalSite, {}});
}

DdNodeStore::DdNodeStore(const DdNodeStore& other)
    : mode_(other.mode_),
      tolerance_(other.tolerance_),
      table_(other.tolerance_),
      computeCache_(other.tolerance_) {
    // Only private stores are ever deep-copied (DecisionDiagram value
    // semantics); their table and cache are empty by construction, so
    // copying the nodes is copying the store.
    requireThat(!other.interning(),
                "DdNodeStore: deep copy of a session-shared store (session diagrams alias "
                "their store instead)");
    pool_.copyFrom(other.pool_);
}

const DDNode& DdNodeStore::node(NodeRef ref) const {
    requireThat(ref < pool_.size(), "DecisionDiagram::node: invalid reference");
    return pool_.at(ref);
}

DDNode& DdNodeStore::mutableNode(NodeRef ref) {
    requireThat(!interning(),
                "DdNodeStore: in-place node mutation is forbidden on a session-shared "
                "(interning) store — detach the diagram first");
    requireThat(ref < pool_.size(), "DecisionDiagram::node: invalid reference");
    return pool_.at(ref);
}

NodeRef DdNodeStore::allocate(std::uint32_t site, std::vector<DDEdge> edges) {
    ensureThat(pool_.size() < kNoNode, "DecisionDiagram: node pool exhausted");
    if (!interning()) {
        return pool_.append(DDNode{site, std::move(edges)});
    }
    // Interning: the probe and the append are one step under the key's
    // shard lock — `makeFresh` runs only on a genuine miss, so exactly one
    // node is ever created per distinct structural key, however many batch
    // items race on it, and a hit allocates nothing at all.
    const auto makeFresh = [&]() -> NodeRef {
        return pool_.append(DDNode{site, std::move(edges)});
    };
    return table_.findOrInsert(site, edges, detail::MakeNodeFnRef(makeFresh));
}

void DdNodeStore::replaceNodes(std::vector<DDNode> nodes) {
    requireThat(!interning(),
                "DdNodeStore: pool replacement is forbidden on a session-shared store");
    pool_.clear();
    for (DDNode& node : nodes) {
        pool_.append(std::move(node));
    }
}

DdNodeStore::CompactionStats DdNodeStore::compactLive(const std::vector<NodeRef>& roots,
                                                      std::vector<NodeRef>& remapOut) {
    requireThat(interning(),
                "DdNodeStore::compactLive: session GC applies to interning stores "
                "(private diagrams use DecisionDiagram::garbageCollect)");
    CompactionStats stats;
    const std::size_t before = pool_.size();
    stats.nodesBefore = before;

    // Mark: iterative DFS from the live roots; the terminal (slot 0) is
    // always live.
    std::vector<char> live(before, 0);
    live[0] = 1;
    std::vector<NodeRef> stack;
    for (const NodeRef root : roots) {
        if (root == kNoNode) {
            continue;
        }
        requireThat(root < before, "DdNodeStore::compactLive: live root outside the pool");
        if (live[root] == 0) {
            live[root] = 1;
            stack.push_back(root);
        }
    }
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        for (const DDEdge& edge : pool_.at(ref).edges) {
            if (!edge.isZeroStub() && live[edge.node] == 0) {
                live[edge.node] = 1;
                stack.push_back(edge.node);
            }
        }
    }

    // Remap in ascending old-ref order: survivors keep their relative
    // allocation order, so the compacted pool is deterministic whenever
    // the pre-GC pool was (the dd_nodes invariance contract survives GC).
    remapOut.assign(before, kNoNode);
    NodeRef next = 0;
    for (std::size_t ref = 0; ref < before; ++ref) {
        if (live[ref] != 0) {
            remapOut[ref] = next++;
        }
    }

    // Copy out the survivors with remapped edges, then rebuild the pool
    // and the table over them. Interning made refs canonical, so the remap
    // is injective on survivors and no two keys collapse.
    std::vector<DDNode> kept;
    kept.reserve(next);
    for (std::size_t ref = 0; ref < before; ++ref) {
        if (live[ref] == 0) {
            continue;
        }
        DDNode node = pool_.at(static_cast<NodeRef>(ref));
        for (DDEdge& edge : node.edges) {
            if (!edge.isZeroStub()) {
                edge.node = remapOut[edge.node];
            }
        }
        kept.push_back(std::move(node));
    }
    pool_.clear();
    table_.clear();
    for (std::size_t newRef = 0; newRef < kept.size(); ++newRef) {
        DDNode& node = kept[newRef];
        if (newRef != 0) { // the terminal is not a table key
            table_.restoreCanonical(node.site, node.edges, static_cast<NodeRef>(newRef));
        }
        pool_.append(std::move(node));
    }
    stats.nodesAfter = pool_.size();
    stats.cacheEvicted = computeCache_.compact(remapOut);
    return stats;
}

// --- DdSession -------------------------------------------------------------

DdSession::DdSession(double tolerance)
    : store_(std::make_shared<DdNodeStore>(DdNodeStore::Mode::Interning, tolerance)) {}

DecisionDiagram DdSession::zeroState(const Dimensions& dims) const {
    return basisState(dims, Digits(MixedRadix(dims).numQudits(), 0));
}

DecisionDiagram DdSession::basisState(const Dimensions& dims, const Digits& digits) const {
    return DecisionDiagram::basisStateOn(store_, dims, digits);
}

DecisionDiagram DdSession::ghzState(const Dimensions& dims) const {
    return DecisionDiagram::ghzStateOn(store_, dims);
}

DecisionDiagram DdSession::wState(const Dimensions& dims) const {
    return DecisionDiagram::wStateOn(store_, dims, /*familyTag=*/0);
}

DecisionDiagram DdSession::embeddedWState(const Dimensions& dims) const {
    return DecisionDiagram::wStateOn(store_, dims, /*familyTag=*/1);
}

DecisionDiagram DdSession::uniformState(const Dimensions& dims) const {
    return DecisionDiagram::uniformStateOn(store_, dims);
}

DecisionDiagram DdSession::cyclicState(const Dimensions& dims, const Digits& start,
                                       std::uint32_t count) const {
    return DecisionDiagram::cyclicStateOn(store_, dims, start, count);
}

DecisionDiagram DdSession::dickeState(const Dimensions& dims, std::uint64_t weight) const {
    return DecisionDiagram::dickeStateOn(store_, dims, weight);
}

DecisionDiagram DdSession::simulate(const Circuit& circuit) const {
    return DecisionDiagram::simulateCircuitOn(store_, circuit);
}

DecisionDiagram DdSession::intern(const DecisionDiagram& diagram) const {
    if (diagram.store_ == store_) {
        return diagram; // already session-backed: O(1) aliasing copy
    }
    DecisionDiagram result(store_, diagram.dimensions());
    if (diagram.rootNode() == kNoNode) {
        return result;
    }
    // Bottom-up memoized rebuild through the session table: sub-trees the
    // session has seen before come back as table hits.
    std::unordered_map<NodeRef, NodeRef> memo;
    const std::function<NodeRef(NodeRef)> visit = [&](NodeRef ref) -> NodeRef {
        if (diagram.node(ref).isTerminal()) {
            return 0;
        }
        if (const auto it = memo.find(ref); it != memo.end()) {
            return it->second;
        }
        // Copy the shape up front: the source may live on a private store
        // whose pool the recursion below is unrelated to, but keeping the
        // access pattern uniform costs nothing.
        const std::uint32_t site = diagram.node(ref).site;
        std::vector<DDEdge> edges = diagram.node(ref).edges;
        for (auto& edge : edges) {
            if (!edge.isZeroStub()) {
                edge.node = visit(edge.node);
            }
        }
        const NodeRef canonical = store_->allocate(site, std::move(edges));
        memo.emplace(ref, canonical);
        return canonical;
    };
    result.root_ = visit(diagram.rootNode());
    result.rootWeight_ = diagram.rootWeight();
    return result;
}

DdSessionGcStats DdSession::garbageCollect(const std::vector<DecisionDiagram*>& live) const {
    std::vector<NodeRef> roots;
    roots.reserve(live.size());
    for (DecisionDiagram* diagram : live) {
        requireThat(diagram != nullptr, "DdSession::garbageCollect: null live diagram");
        requireThat(diagram->store_ == store_,
                    "DdSession::garbageCollect: live diagram is not backed by this session");
        if (diagram->root_ != kNoNode) {
            roots.push_back(diagram->root_);
        }
    }
    std::vector<NodeRef> remap;
    const auto compaction = store_->compactLive(roots, remap);
    // Remap each live diagram's root exactly once (the same object may be
    // listed twice; remapping twice would renumber through the new space).
    std::unordered_set<const DecisionDiagram*> remapped;
    for (DecisionDiagram* diagram : live) {
        if (!remapped.insert(diagram).second || diagram->root_ == kNoNode) {
            continue;
        }
        diagram->root_ = remap[diagram->root_];
        ensureThat(diagram->root_ != kNoNode,
                   "DdSession::garbageCollect: a live root was collected");
    }
    DdSessionGcStats stats;
    stats.nodesBefore = compaction.nodesBefore;
    stats.nodesAfter = compaction.nodesAfter;
    stats.cacheEntriesEvicted = compaction.cacheEvicted;
    stats.liveRoots = roots.size();
    return stats;
}

DdSessionStats DdSession::stats() const {
    DdSessionStats stats;
    stats.poolNodes = store_->size();
    stats.unique = store_->uniqueTable().stats();
    stats.cache = store_->computeCache().stats();
    return stats;
}

void DdSession::resetStats() {
    store_->uniqueTable().resetStats();
    store_->computeCache().resetStats();
}

} // namespace mqsp::dd
