#include "mqsp/complexnum/complex_table.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/support/error.hpp"

#include <cmath>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace mqsp {

namespace {

/// Collect reachable node refs (terminal excluded), each exactly once.
std::vector<NodeRef> reachableInternal(const DecisionDiagram& dd) {
    std::vector<NodeRef> result;
    if (dd.rootNode() == kNoNode) {
        return result;
    }
    std::vector<bool> seen(dd.poolSize(), false);
    std::vector<NodeRef> stack{dd.rootNode()};
    seen[dd.rootNode()] = true;
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        const DDNode& n = dd.node(ref);
        if (n.isTerminal()) {
            continue;
        }
        result.push_back(ref);
        for (const auto& edge : n.edges) {
            if (!edge.isZeroStub() && !seen[edge.node]) {
                seen[edge.node] = true;
                stack.push_back(edge.node);
            }
        }
    }
    return result;
}

} // namespace

std::uint64_t DecisionDiagram::denseTreeNodeCount(const Dimensions& dims) {
    // Root + every level of the dense splitting tree + one leaf per
    // amplitude: sum over k in [0, n] of the product of the first k dims.
    std::uint64_t total = 0;
    std::uint64_t prefix = 1;
    for (std::size_t k = 0; k <= dims.size(); ++k) {
        total += prefix;
        if (k < dims.size()) {
            prefix *= dims[k];
        }
    }
    return total;
}

std::uint64_t DecisionDiagram::nodeCount(NodeCountMode mode) const {
    switch (mode) {
    case NodeCountMode::Internal:
        return reachableInternal(*this).size();
    case NodeCountMode::DenseTree:
        return denseTreeNodeCount(radix_.dimensions());
    case NodeCountMode::Slots: {
        if (root_ == kNoNode) {
            return 0;
        }
        std::uint64_t slots = 1; // the root itself
        for (const NodeRef ref : reachableInternal(*this)) {
            for (const auto& edge : node(ref).edges) {
                if (!edge.pruned) {
                    ++slots;
                }
            }
        }
        return slots;
    }
    case NodeCountMode::TreeSlots: {
        if (root_ == kNoNode) {
            return 0;
        }
        // f(v) = slots of the tree expansion below v (v itself excluded);
        // memoized so shared nodes are computed once but counted per path.
        std::unordered_map<NodeRef, std::uint64_t> memo;
        const std::function<std::uint64_t(NodeRef)> f = [&](NodeRef ref) -> std::uint64_t {
            if (const auto it = memo.find(ref); it != memo.end()) {
                return it->second;
            }
            std::uint64_t slots = 0;
            for (const auto& edge : node(ref).edges) {
                if (edge.pruned) {
                    continue;
                }
                ++slots;
                if (!edge.isZeroStub() && !node(edge.node).isTerminal()) {
                    slots += f(edge.node);
                }
            }
            memo.emplace(ref, slots);
            return slots;
        };
        return 1 + f(root_);
    }
    }
    detail::throwInternal("DecisionDiagram::nodeCount: unknown mode");
}

std::size_t DecisionDiagram::distinctComplexCount(double tol) const {
    if (root_ == kNoNode) {
        return 0;
    }
    ComplexTable table(tol);
    table.lookup(rootWeight_);
    for (const NodeRef ref : reachableInternal(*this)) {
        for (const auto& edge : node(ref).edges) {
            table.lookup(edge.weight); // zero stubs contribute the value 0
        }
    }
    return table.size();
}

std::vector<double> DecisionDiagram::nodeContributions() const {
    std::vector<double> contribution(poolSize(), 0.0);
    if (root_ == kNoNode) {
        return contribution;
    }
    // Mass flows downward: contribution(child) += contribution(parent) *
    // |edge weight|^2. Out-edge weights are normalized per node, so the mass
    // below any node equals the mass flowing into it. Nodes are processed in
    // topological order (by site level), which a DFS order provides on these
    // level-structured diagrams; to stay correct on DAGs we accumulate by
    // level sweeps.
    contribution[root_] = squaredMagnitude(rootWeight_);
    // Level-ordered sweep: gather reachable nodes, bucket by site.
    std::vector<std::vector<NodeRef>> byLevel(radix_.numQudits());
    for (const NodeRef ref : reachableInternal(*this)) {
        byLevel[node(ref).site].push_back(ref);
    }
    for (const auto& level : byLevel) {
        for (const NodeRef ref : level) {
            const DDNode& n = node(ref);
            for (const auto& edge : n.edges) {
                if (edge.isZeroStub()) {
                    continue;
                }
                const DDNode& child = node(edge.node);
                if (child.isTerminal()) {
                    continue;
                }
                contribution[edge.node] +=
                    contribution[ref] * squaredMagnitude(edge.weight);
            }
        }
    }
    return contribution;
}

bool DecisionDiagram::isTensorProductNode(NodeRef ref) const {
    const DDNode& n = node(ref);
    if (n.isTerminal()) {
        return false;
    }
    NodeRef shared = kNoNode;
    std::size_t nonZero = 0;
    for (const auto& edge : n.edges) {
        if (edge.isZeroStub()) {
            continue;
        }
        ++nonZero;
        if (shared == kNoNode) {
            shared = edge.node;
        } else if (shared != edge.node) {
            return false;
        }
    }
    // A single nonzero edge is not the sharing pattern of §4.3 (and eliding
    // its control would change the paper's control counts); require at
    // least two edges converging on one child.
    return nonZero >= 2 && shared != kNoNode && !node(shared).isTerminal();
}

std::string DecisionDiagram::checkInvariants(double tol) const {
    if (root_ == kNoNode) {
        return {};
    }
    std::ostringstream problems;
    for (const NodeRef ref : reachableInternal(*this)) {
        const DDNode& n = node(ref);
        if (n.site >= radix_.numQudits()) {
            problems << "node " << ref << " has out-of-range site " << n.site << "; ";
            continue;
        }
        if (n.edges.size() != radix_.dimensionAt(n.site)) {
            problems << "node " << ref << " has " << n.edges.size() << " edges, expected "
                     << radix_.dimensionAt(n.site) << "; ";
        }
        double sumSquares = 0.0;
        bool anyChild = false;
        for (const auto& edge : n.edges) {
            if (edge.isZeroStub()) {
                if (!approxZero(edge.weight, tol)) {
                    problems << "node " << ref << " has zero stub with nonzero weight; ";
                }
                continue;
            }
            anyChild = true;
            sumSquares += squaredMagnitude(edge.weight);
            const DDNode& child = node(edge.node);
            if (!child.isTerminal() && child.site != n.site + 1) {
                problems << "node " << ref << " skips levels (site " << n.site << " -> "
                         << child.site << "); ";
            }
            if (child.isTerminal() && n.site + 1 != radix_.numQudits()) {
                problems << "node " << ref << " reaches the terminal early; ";
            }
        }
        if (!anyChild) {
            problems << "node " << ref << " has only zero stubs; ";
        } else if (std::abs(sumSquares - 1.0) > tol) {
            problems << "node " << ref << " violates normalization (sum=" << sumSquares
                     << "); ";
        }
    }
    return problems.str();
}

} // namespace mqsp
