#pragma once

// Session-scoped decision-diagram memory: the node types shared by every DD
// file, an open-addressed uniquing table that hash-conses nodes at
// allocation time, a small direct-mapped compute cache for the recursive DD
// addition, and the `DdSession` that owns both for the lifetime of a
// backend.
//
// Two allocation regimes share one node-pool abstraction (`DdNodeStore`):
//
//  * a *private* store backs one diagram, appends nodes without uniquing,
//    and preserves the historical tree semantics exactly — `fromStateVector`
//    trees, the approximation pass (which mutates nodes in place), and
//    everything the existing test suite pins;
//  * an *interning* store is shared by every diagram a `DdSession` touches
//    (targets, replayed states, per-gate intermediates). Allocation goes
//    through the uniquing table, so a structurally identical sub-tree is
//    built once per session no matter how many diagrams request it, and the
//    diagrams come out canonical (reduced) by construction. Nodes in an
//    interning store are immutable once allocated: in-place mutators
//    (cutEdge/renormalize) refuse, copies of session diagrams share the
//    store, and lifetime is owned by the session, not by any one diagram.
//
// The table is deliberately single-threaded (one session per coordinating
// thread, matching the EvaluationBackend threading contract); the concurrent
// table the parallel-DD roadmap item needs will build on this layout.

#include "mqsp/complexnum/complex.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace mqsp {

class DecisionDiagram;
class Circuit;

/// Handle into a node pool (a DdNodeStore).
using NodeRef = std::uint32_t;

/// Sentinel for an absent child: the edge weight is zero and the whole
/// sub-space below carries no amplitude ("zero stub"). Zero-amplitude
/// sub-trees are never materialized (§4.2: they produce no operations).
inline constexpr NodeRef kNoNode = std::numeric_limits<NodeRef>::max();

/// An out-edge: destination node plus complex weight. An edge whose
/// destination is the terminal carries the (normalized) leaf amplitude.
/// `pruned` distinguishes a slot emptied by the approximation pass from a
/// structurally zero slot of the original state: the paper's approximated
/// node count drops when leaves are pruned but keeps counting structural
/// zeros (compare GHZ vs random rows of Table 1).
struct DDEdge {
    NodeRef node = kNoNode;
    Complex weight{0.0, 0.0};
    bool pruned = false;

    [[nodiscard]] bool isZeroStub() const noexcept { return node == kNoNode; }
};

/// A decision-diagram node. `site` is the qudit this node decides
/// (0 = most significant / root level); a node at site s has exactly
/// dim(site s) out-edges. The unique terminal node is marked by
/// site == kTerminalSite and has no edges.
struct DDNode {
    static constexpr std::uint32_t kTerminalSite = std::numeric_limits<std::uint32_t>::max();

    std::uint32_t site = 0;
    std::vector<DDEdge> edges;

    [[nodiscard]] bool isTerminal() const noexcept { return site == kTerminalSite; }
};

namespace dd {

/// Counters of one uniquing table. `hits` are lookups answered by an
/// existing entry (a sub-tree someone already built this session); `misses`
/// inserted a new one. `probeSteps` counts open-addressing displacements —
/// the collision pressure of the hash at the current load.
struct UniqueTableStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t probeSteps = 0;
    std::uint64_t grows = 0;

    [[nodiscard]] double hitRate() const noexcept {
        return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
    }
};

/// Counters of the operation/compute cache.
struct ComputeCacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double hitRate() const noexcept {
        return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
    }
};

/// Open-addressed (linear-probing) uniquing table mapping a node's
/// structural key — site, child refs, and edge weights bucketed to the
/// merge tolerance — to the canonical NodeRef that first materialized it.
/// The table does not own nodes; it maps keys to refs of whatever pool the
/// caller allocates from (DdNodeStore for vector DDs, MatrixDdStore for
/// operator DDs — whose dim^2-ary nodes reuse the same key layout).
///
/// Keys are stored in flat arenas (one children array, one bucket array per
/// component) rather than per-entry vectors, so growth rehashes by cached
/// hash without touching the keys.
class UniqueTable {
public:
    explicit UniqueTable(double tolerance, std::size_t initialCapacity = 256);

    /// Canonical ref for (site, edges): the existing entry when one
    /// matches, else `fresh` — which the caller must have just allocated —
    /// recorded as the canonical node for this key. Returns the canonical
    /// ref; `fresh == kNoNode` performs a pure lookup (returns kNoNode on
    /// miss without recording anything, and without counting a miss).
    NodeRef findOrInsert(std::uint32_t site, const std::vector<DDEdge>& edges, NodeRef fresh);

    /// findOrInsert for operator-DD edge lists (node + weight pairs laid
    /// out as DDEdge without the pruned flag — see MatrixDdStore).
    NodeRef findOrInsertRaw(std::uint32_t site, const NodeRef* children,
                            const Complex* weights, std::size_t arity, NodeRef fresh);

    [[nodiscard]] const UniqueTableStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t size() const noexcept { return entrySite_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
    [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
    void resetStats() noexcept { stats_ = UniqueTableStats{}; }

    /// Weight-bucketing shared with the historical reduce(): values within
    /// one tolerance bucket are treated as the same canonical weight.
    [[nodiscard]] static std::int64_t bucketOf(double value, double tolerance);

private:
    [[nodiscard]] std::uint64_t hashKey(std::uint32_t site, const NodeRef* children,
                                        const std::int64_t* re, const std::int64_t* im,
                                        std::size_t arity) const noexcept;
    [[nodiscard]] bool entryMatches(std::uint32_t entry, std::uint32_t site,
                                    const NodeRef* children, const std::int64_t* re,
                                    const std::int64_t* im, std::size_t arity) const noexcept;
    /// Probe for the key currently held in the scratch buffers.
    NodeRef probe(std::uint32_t site, std::size_t arity, NodeRef fresh);
    void grow();

    double tolerance_;
    std::size_t initialCapacity_;
    /// Slot array: entry index + 1, 0 = empty. Power-of-two capacity.
    std::vector<std::uint32_t> slots_;
    /// Per-entry records (parallel arrays; index = insertion order).
    std::vector<std::uint64_t> entryHash_;
    std::vector<std::uint32_t> entrySite_;
    std::vector<NodeRef> entryValue_;
    std::vector<std::uint64_t> entryOffset_;
    std::vector<std::uint32_t> entryArity_;
    /// Flat key arenas.
    std::vector<NodeRef> keyChildren_;
    std::vector<std::int64_t> keyRe_;
    std::vector<std::int64_t> keyIm_;
    /// Scratch buffers reused across lookups (buckets of the probed key).
    std::vector<std::int64_t> scratchRe_;
    std::vector<std::int64_t> scratchIm_;
    std::vector<NodeRef> scratchChildren_;

    UniqueTableStats stats_;
};

/// Direct-mapped operation cache (the classic DD-package compute table),
/// keyed on (operation, x node, y node, bucketed weight ratio); conflicting
/// keys overwrite. Two operations use it:
///
///  * Add — the recursive normalized DD addition add(x, y) -> edge. The
///    operation is homogeneous in its in-weights, so entries carry the
///    bucketed y/x weight ratio and store the result relative to x's
///    weight: one entry serves every scaled recurrence of the same
///    structural addition, across gates and diagrams of the owning session.
///  * InnerProduct — <x-subtree | y-subtree> of canonical session nodes
///    (ratio unused, `value` is the overlap). Verification replays revisit
///    the same node pairs run after run; the session cache carries those
///    results across calls where a per-call memo cannot.
class ComputeCache {
public:
    enum class Op : std::uint8_t { Add, InnerProduct };

    struct Result {
        NodeRef node = kNoNode;
        Complex value{0.0, 0.0}; ///< Add: weight relative to x; InnerProduct: the overlap
    };

    explicit ComputeCache(double tolerance, std::size_t slots = std::size_t{1} << 16U);

    /// nullptr on miss; the entry otherwise. `ratio` is y.weight / x.weight
    /// for Add and ignored (pass {}) for InnerProduct.
    [[nodiscard]] const Result* lookup(Op op, NodeRef x, NodeRef y, const Complex& ratio);
    void store(Op op, NodeRef x, NodeRef y, const Complex& ratio, const Result& result);

    [[nodiscard]] const ComputeCacheStats& stats() const noexcept { return stats_; }
    void resetStats() noexcept { stats_ = ComputeCacheStats{}; }

private:
    struct Entry {
        NodeRef x = kNoNode;
        NodeRef y = kNoNode;
        std::int64_t ratioRe = 0;
        std::int64_t ratioIm = 0;
        Result result;
        Op op = Op::Add;
        bool valid = false;
    };

    [[nodiscard]] std::size_t slotOf(Op op, NodeRef x, NodeRef y, std::int64_t re,
                                     std::int64_t im) const noexcept;

    double tolerance_;
    std::size_t slotCount_;
    /// Allocated lazily on the first store, so diagram-private stores that
    /// never apply an operation pay nothing for the cache.
    std::vector<Entry> entries_;
    ComputeCacheStats stats_;
};

/// A decision-diagram node pool: the unique terminal at slot 0 plus every
/// allocated internal node. Private stores append; interning stores route
/// every allocation through the uniquing table (see file header).
class DdNodeStore {
public:
    enum class Mode {
        Private,   ///< one diagram, append-only, in-place mutation allowed
        Interning, ///< session-shared, hash-consed, nodes immutable
    };

    explicit DdNodeStore(Mode mode, double tolerance = Tolerance::kDefault);

    [[nodiscard]] bool interning() const noexcept { return mode_ == Mode::Interning; }
    [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

    [[nodiscard]] const DDNode& node(NodeRef ref) const;
    /// In-place access — refused on an interning store, whose nodes other
    /// diagrams may share.
    [[nodiscard]] DDNode& mutableNode(NodeRef ref);

    /// Allocate (Private) or intern (Interning) a node.
    NodeRef allocate(std::uint32_t site, std::vector<DDEdge> edges);

    /// Replace the whole pool (garbageCollect on a private store).
    void replaceNodes(std::vector<DDNode> nodes);

    [[nodiscard]] UniqueTable& uniqueTable() noexcept { return table_; }
    [[nodiscard]] const UniqueTable& uniqueTable() const noexcept { return table_; }
    [[nodiscard]] ComputeCache& computeCache() noexcept { return computeCache_; }
    [[nodiscard]] const ComputeCache& computeCache() const noexcept { return computeCache_; }

private:
    Mode mode_;
    double tolerance_;
    std::vector<DDNode> nodes_;
    UniqueTable table_;
    ComputeCache computeCache_;
};

/// Aggregate statistics of one session: live pool size plus the uniquing
/// and compute-cache counters — the `dd_nodes` / `unique_hit_rate` /
/// `cache_hit_rate` metrics the bench harness and the CLI tools report.
struct DdSessionStats {
    std::uint64_t poolNodes = 0; ///< allocated nodes incl. the terminal
    UniqueTableStats unique;
    ComputeCacheStats cache;

    [[nodiscard]] double uniqueHitRate() const noexcept { return unique.hitRate(); }
    [[nodiscard]] double cacheHitRate() const noexcept { return cache.hitRate(); }
};

/// A DD evaluation session: one shared interning store for every diagram
/// the owner touches. `DdBackend` holds one for its whole lifetime, so the
/// target, the replayed state, and every per-gate intermediate of a
/// verification run allocate from (and hit into) the same table.
///
/// Lifetime/ownership contract: diagrams built by a session hold a
/// shared_ptr to the session's store, so they remain valid after the
/// session object is gone — but they are immutable (the in-place mutators
/// throw) and copying them is O(1) aliasing, not a deep copy. The session
/// is deliberately scoped, not process-global: a global table would make
/// node lifetime unmanageable across unrelated workloads and would bake in
/// cross-thread contention before the concurrent-table work lands.
class DdSession {
public:
    explicit DdSession(double tolerance = Tolerance::kDefault);

    [[nodiscard]] double tolerance() const noexcept { return store_->tolerance(); }
    [[nodiscard]] const std::shared_ptr<DdNodeStore>& store() const noexcept { return store_; }

    /// --- canonical builders on the shared store ------------------------
    /// Same states as the DecisionDiagram statics, but hash-consed: the
    /// result is the reduced (DAG) form and repeated builds are table hits.
    [[nodiscard]] DecisionDiagram zeroState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram basisState(const Dimensions& dims, const Digits& digits) const;
    [[nodiscard]] DecisionDiagram ghzState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram wState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram embeddedWState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram uniformState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram cyclicState(const Dimensions& dims, const Digits& start,
                                              std::uint32_t count) const;
    [[nodiscard]] DecisionDiagram dickeState(const Dimensions& dims,
                                             std::uint64_t weight) const;

    /// DD-native replay of a circuit from |0...0> on the shared store.
    /// Interning keeps every intermediate canonical, so no per-gate
    /// reduce/garbage-collect pass is needed (or performed).
    [[nodiscard]] DecisionDiagram simulate(const Circuit& circuit) const;

    /// Import a foreign diagram: rebuild its reachable nodes through the
    /// session table (bottom-up, memoized). Sub-trees the session has
    /// already built elsewhere come back as table hits.
    [[nodiscard]] DecisionDiagram intern(const DecisionDiagram& diagram) const;

    [[nodiscard]] DdSessionStats stats() const noexcept;
    void resetStats() noexcept;

private:
    std::shared_ptr<DdNodeStore> store_;
};

} // namespace dd
} // namespace mqsp
