#pragma once

// Session-scoped decision-diagram memory: the node types shared by every DD
// file, a sharded open-addressed uniquing table that hash-conses nodes at
// allocation time, a striped direct-mapped compute cache for the recursive
// DD addition, and the `DdSession` that owns both for the lifetime of a
// backend.
//
// Two allocation regimes share one node-pool abstraction (`DdNodeStore`):
//
//  * a *private* store backs one diagram, appends nodes without uniquing,
//    and preserves the historical tree semantics exactly — `fromStateVector`
//    trees, the approximation pass (which mutates nodes in place), and
//    everything the existing test suite pins;
//  * an *interning* store is shared by every diagram a `DdSession` touches
//    (targets, replayed states, per-gate intermediates). Allocation goes
//    through the uniquing table, so a structurally identical sub-tree is
//    built once per session no matter how many diagrams request it, and the
//    diagrams come out canonical (reduced) by construction. Nodes in an
//    interning store are immutable once allocated: in-place mutators
//    (cutEdge/renormalize) refuse, copies of session diagrams share the
//    store, and lifetime is owned by the session, not by any one diagram.
//
// Concurrency model (the multicore substrate behind verifyBatch):
//
//  * The table is split into kShardCount shards selected by the top bits of
//    the key hash (slot probing uses the low bits, so shard choice and slot
//    distribution are independent). An interning store constructs its table
//    `Sharded`: findOrInsert takes the owning shard's mutex, so concurrent
//    batch items intern into one shared pool and a distinct structural key
//    maps to exactly one NodeRef regardless of interleaving. Serial tables
//    (private stores, reduce()'s transient table) run the same code without
//    locking.
//  * Nodes live in a chunked pool with geometrically growing blocks; a
//    node's address never changes once allocated, so readers follow NodeRefs
//    out of edges without any pool-wide lock. Block pointers are published
//    with release/acquire ordering; a NodeRef itself is only ever obtained
//    through a shard mutex (allocation) or from the edges of a node that
//    was, so the writes constructing a node happen-before every read of it
//    by mutex-chain transitivity. The memory-ordering contract is spelled
//    out in docs/ARCHITECTURE.md ("DD session memory").
//  * The compute cache synchronizes entry access with striped mutexes and
//    keeps its counters in relaxed atomics; entries are copied out whole
//    under the stripe lock, so a concurrent overwrite can cost a hit but
//    never tears a Result.

#include "mqsp/complexnum/complex.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace mqsp {

class DecisionDiagram;
class Circuit;

/// Handle into a node pool (a DdNodeStore).
using NodeRef = std::uint32_t;

/// Sentinel for an absent child: the edge weight is zero and the whole
/// sub-space below carries no amplitude ("zero stub"). Zero-amplitude
/// sub-trees are never materialized (§4.2: they produce no operations).
inline constexpr NodeRef kNoNode = std::numeric_limits<NodeRef>::max();

/// An out-edge: destination node plus complex weight. An edge whose
/// destination is the terminal carries the (normalized) leaf amplitude.
/// `pruned` distinguishes a slot emptied by the approximation pass from a
/// structurally zero slot of the original state: the paper's approximated
/// node count drops when leaves are pruned but keeps counting structural
/// zeros (compare GHZ vs random rows of Table 1).
struct DDEdge {
    NodeRef node = kNoNode;
    Complex weight{0.0, 0.0};
    bool pruned = false;

    [[nodiscard]] bool isZeroStub() const noexcept { return node == kNoNode; }
};

/// A decision-diagram node. `site` is the qudit this node decides
/// (0 = most significant / root level); a node at site s has exactly
/// dim(site s) out-edges. The unique terminal node is marked by
/// site == kTerminalSite and has no edges.
struct DDNode {
    static constexpr std::uint32_t kTerminalSite = std::numeric_limits<std::uint32_t>::max();

    std::uint32_t site = 0;
    std::vector<DDEdge> edges;

    [[nodiscard]] bool isTerminal() const noexcept { return site == kTerminalSite; }
};

namespace dd {

namespace detail {

/// Non-owning reference to a `NodeRef()` callable — the allocation hook
/// findOrInsert invokes (under the shard lock) when a key misses, so the
/// probe and the pool append are one atomic step and no tentative node is
/// ever created for a key that hits.
class MakeNodeFnRef {
public:
    template <typename Fn>
    MakeNodeFnRef(Fn& fn) // NOLINT(google-explicit-constructor): binder type
        : ctx_(const_cast<void*>(static_cast<const void*>(&fn))),
          call_([](void* ctx) -> NodeRef { return (*static_cast<Fn*>(ctx))(); }) {}

    NodeRef operator()() const { return call_(ctx_); }

private:
    void* ctx_;
    NodeRef (*call_)(void*);
};

/// Chunked node pool with stable addresses: storage grows by appending
/// geometrically sized blocks (block 0 holds 64 nodes, block b >= 1 holds
/// 64·2^(b-1)), so a node's address never moves after allocation — the
/// property that lets concurrent readers follow NodeRefs without a pool
/// lock, and that makes holding a node reference across an allocating
/// recursion safe. `append` may be called concurrently (the interning path
/// calls it under a shard mutex; distinct shards race); `size()` is the
/// number of reserved slots and, once the racing appends have been
/// published, the number of constructed nodes. `clear`/`copyFrom` are
/// single-threaded (private-store maintenance only).
template <typename NodeT>
class ChunkedNodePool {
public:
    ChunkedNodePool() = default;
    ~ChunkedNodePool() { destroyBlocks(); }
    ChunkedNodePool(const ChunkedNodePool&) = delete;
    ChunkedNodePool& operator=(const ChunkedNodePool&) = delete;

    std::uint32_t append(NodeT node) {
        const std::uint32_t index = size_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t block = blockIndexOf(index);
        NodeT* storage = blocks_[block].load(std::memory_order_acquire);
        if (storage == nullptr) {
            storage = ensureBlock(block);
        }
        storage[index - blockBase(block)] = std::move(node);
        return index;
    }

    [[nodiscard]] const NodeT& at(std::uint32_t index) const noexcept {
        const std::size_t block = blockIndexOf(index);
        return blocks_[block].load(std::memory_order_acquire)[index - blockBase(block)];
    }

    [[nodiscard]] NodeT& at(std::uint32_t index) noexcept {
        const std::size_t block = blockIndexOf(index);
        return blocks_[block].load(std::memory_order_acquire)[index - blockBase(block)];
    }

    [[nodiscard]] std::size_t size() const noexcept {
        return size_.load(std::memory_order_acquire);
    }

    void clear() {
        destroyBlocks();
        size_.store(0, std::memory_order_relaxed);
    }

    void copyFrom(const ChunkedNodePool& other) {
        clear();
        const std::size_t count = other.size();
        for (std::size_t i = 0; i < count; ++i) {
            append(other.at(static_cast<std::uint32_t>(i)));
        }
    }

private:
    static constexpr std::uint32_t kFirstBlockSize = 64;
    /// Block b >= 1 spans [64·2^(b-1), 64·2^b); 27 blocks cover the full
    /// 32-bit NodeRef range.
    static constexpr std::size_t kMaxBlocks = 27;

    [[nodiscard]] static constexpr std::size_t blockIndexOf(std::uint32_t index) noexcept {
        const std::uint32_t chunk = index / kFirstBlockSize;
        return chunk == 0 ? 0 : static_cast<std::size_t>(std::bit_width(chunk));
    }
    [[nodiscard]] static constexpr std::uint32_t blockBase(std::size_t block) noexcept {
        return block == 0 ? 0U : kFirstBlockSize << (block - 1);
    }
    [[nodiscard]] static constexpr std::uint32_t blockSize(std::size_t block) noexcept {
        return block == 0 ? kFirstBlockSize : kFirstBlockSize << (block - 1);
    }

    NodeT* ensureBlock(std::size_t block) {
        const std::lock_guard<std::mutex> lock(growMutex_);
        NodeT* storage = blocks_[block].load(std::memory_order_relaxed);
        if (storage == nullptr) {
            storage = new NodeT[blockSize(block)];
            // Release: the default-constructed elements are fully built
            // before any appender (or reader) acquires the pointer.
            blocks_[block].store(storage, std::memory_order_release);
        }
        return storage;
    }

    void destroyBlocks() {
        for (auto& block : blocks_) {
            delete[] block.load(std::memory_order_relaxed);
            block.store(nullptr, std::memory_order_relaxed);
        }
    }

    std::array<std::atomic<NodeT*>, kMaxBlocks> blocks_{};
    std::atomic<std::uint32_t> size_{0};
    std::mutex growMutex_; ///< serializes block creation only
};

} // namespace detail

/// Counters of one uniquing table. `hits` are lookups answered by an
/// existing entry (a sub-tree someone already built this session); `misses`
/// inserted a new one. `probeSteps` counts open-addressing displacements —
/// the collision pressure of the hash at the current load.
struct UniqueTableStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t probeSteps = 0;
    std::uint64_t grows = 0;

    [[nodiscard]] double hitRate() const noexcept {
        return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
    }
};

/// Counters of the operation/compute cache.
struct ComputeCacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    [[nodiscard]] double hitRate() const noexcept {
        return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
    }
};

/// Sharded open-addressed (linear-probing) uniquing table mapping a node's
/// structural key — site, child refs, and edge weights bucketed to the
/// merge tolerance — to the canonical NodeRef that first materialized it.
/// The table does not own nodes; it maps keys to refs of whatever pool the
/// caller allocates from (DdNodeStore for vector DDs, MatrixDdStore for
/// operator DDs — whose dim^2-ary nodes reuse the same key layout).
///
/// Keys are stored in per-shard flat arenas (one children array, one bucket
/// array per component) rather than per-entry vectors, so growth rehashes
/// by cached hash without touching the keys. A key's shard is fixed by the
/// top bits of its hash, so the per-shard key sets — and with them `size()`
/// and the lookup/hit/miss counters of deterministic workloads — are
/// invariant under thread count and insertion interleaving; only
/// `probeSteps` (probe-order dependent) may vary between concurrent runs.
class UniqueTable {
public:
    /// Locking regime, fixed at construction.
    enum class Concurrency : std::uint8_t {
        Serial,  ///< single-threaded callers: no locking (private stores,
                 ///< reduce()'s transient tables)
        Sharded, ///< findOrInsert* take the owning shard's mutex; safe for
                 ///< concurrent use (interning stores)
    };

    explicit UniqueTable(double tolerance, std::size_t initialCapacity = 256,
                         Concurrency concurrency = Concurrency::Serial);

    UniqueTable(const UniqueTable&) = delete;
    UniqueTable& operator=(const UniqueTable&) = delete;

    /// Canonical ref for (site, edges): the existing entry when one
    /// matches, else `fresh` — which the caller must have just allocated —
    /// recorded as the canonical node for this key. Returns the canonical
    /// ref; `fresh == kNoNode` performs a pure lookup (returns kNoNode on
    /// miss without recording anything, and without counting a miss).
    /// Single-threaded protocol: the caller pops its tentative node when
    /// the return value differs from `fresh`. Concurrent interners use the
    /// MakeNodeFnRef overload instead.
    NodeRef findOrInsert(std::uint32_t site, const std::vector<DDEdge>& edges, NodeRef fresh);

    /// findOrInsert for operator-DD edge lists (node + weight pairs laid
    /// out as DDEdge without the pruned flag — see MatrixDdStore).
    NodeRef findOrInsertRaw(std::uint32_t site, const NodeRef* children,
                            const Complex* weights, std::size_t arity, NodeRef fresh);

    /// Interning protocol: probe under the shard lock and, on a miss, call
    /// `makeFresh()` — still under the lock — to allocate the node and
    /// record its ref as canonical. Exactly one allocation happens per
    /// distinct key however many threads race on it, and no tentative node
    /// is ever created for a key that hits.
    NodeRef findOrInsert(std::uint32_t site, const std::vector<DDEdge>& edges,
                         const detail::MakeNodeFnRef& makeFresh);
    NodeRef findOrInsertRaw(std::uint32_t site, const NodeRef* children,
                            const Complex* weights, std::size_t arity,
                            const detail::MakeNodeFnRef& makeFresh);

    /// Drop every entry while keeping slot capacity and the cumulative
    /// counters — the reset step of a session GC, before the surviving
    /// nodes are re-registered via restoreCanonical. Single-threaded:
    /// callers guarantee quiescence.
    void clear();

    /// Re-register a surviving node under its compacted ref without
    /// touching the lookup/hit/miss counters (a GC rebuild is bookkeeping,
    /// not a workload). GC-rebuild only: the key must not already be
    /// present — guaranteed when repopulating a cleared table with nodes
    /// that were interned (and therefore structurally distinct) before.
    void restoreCanonical(std::uint32_t site, const std::vector<DDEdge>& edges, NodeRef value);

    /// Counters summed over the shards (by value: a Sharded table's shards
    /// are locked one at a time, so the sum is a consistent snapshot only
    /// at quiescence — which is when the session metrics are read).
    [[nodiscard]] UniqueTableStats stats() const;
    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const;
    [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
    /// True for tables built with Concurrency::Sharded — the gate intra-
    /// diagram fan-outs check before interning from worker threads.
    [[nodiscard]] bool sharded() const noexcept { return sharded_; }
    void resetStats();

    /// Weight-bucketing shared with the historical reduce(): values within
    /// one tolerance bucket are treated as the same canonical weight.
    [[nodiscard]] static std::int64_t bucketOf(double value, double tolerance);

private:
    /// One shard: a complete open-addressed table over its share of the key
    /// space, with its own entry records, key arenas, stats, and mutex.
    struct Shard {
        /// Slot array: entry index + 1, 0 = empty. Power-of-two capacity.
        std::vector<std::uint32_t> slots;
        /// Per-entry records (parallel arrays; index = insertion order).
        std::vector<std::uint64_t> entryHash;
        std::vector<std::uint32_t> entrySite;
        std::vector<NodeRef> entryValue;
        std::vector<std::uint64_t> entryOffset;
        std::vector<std::uint32_t> entryArity;
        /// Flat key arenas.
        std::vector<NodeRef> keyChildren;
        std::vector<std::int64_t> keyRe;
        std::vector<std::int64_t> keyIm;

        UniqueTableStats stats;
        mutable std::mutex mutex; ///< taken only by Sharded tables
    };

    /// Power-of-two shard count; the shard index is the hash's top nibble,
    /// independent of the slot index (low bits).
    static constexpr std::size_t kShardCount = 16;

    [[nodiscard]] static bool entryMatches(const Shard& shard, std::uint32_t entry,
                                           std::uint32_t site, const NodeRef* children,
                                           const std::int64_t* re, const std::int64_t* im,
                                           std::size_t arity) noexcept;
    /// Probe `shard` (locking it first when Sharded) for the given key.
    NodeRef probeShard(Shard& shard, std::uint64_t hash, std::uint32_t site,
                       const NodeRef* children, const std::int64_t* re, const std::int64_t* im,
                       std::size_t arity, NodeRef fresh,
                       const detail::MakeNodeFnRef* makeFresh);
    void growShard(Shard& shard);
    NodeRef dispatch(std::uint32_t site, const NodeRef* children, const Complex* weights,
                     const DDEdge* edges, std::size_t arity, NodeRef fresh,
                     const detail::MakeNodeFnRef* makeFresh);

    double tolerance_;
    std::size_t initialShardCapacity_;
    bool sharded_;
    std::array<Shard, kShardCount> shards_;
};

/// Direct-mapped operation cache (the classic DD-package compute table),
/// keyed on (operation, x node, y node, bucketed weight ratio); conflicting
/// keys overwrite. Two operations use it:
///
///  * Add — the recursive normalized DD addition add(x, y) -> edge. The
///    operation is homogeneous in its in-weights, so entries carry the
///    bucketed y/x weight ratio and store the result relative to x's
///    weight: one entry serves every scaled recurrence of the same
///    structural addition, across gates and diagrams of the owning session.
///  * InnerProduct — <x-subtree | y-subtree> of canonical session nodes
///    (ratio unused, `value` is the overlap). Verification replays revisit
///    the same node pairs run after run; the session cache carries those
///    results across calls where a per-call memo cannot.
///
/// Thread safety: entry slots are guarded by striped mutexes (stripe =
/// slot's low bits) and copied in and out whole, so concurrent lookups and
/// stores never tear a Result — a racing overwrite can only turn a would-be
/// hit into a miss. Counters are relaxed atomics. Hit/miss counts of
/// concurrent workloads depend on the interleaving (eviction races), so
/// batch metrics pin `dd_nodes`, which is interleaving-invariant, rather
/// than cache rates.
class ComputeCache {
public:
    enum class Op : std::uint8_t { Add, InnerProduct };

    struct Result {
        NodeRef node = kNoNode;
        Complex value{0.0, 0.0}; ///< Add: weight relative to x; InnerProduct: the overlap
    };

    explicit ComputeCache(double tolerance, std::size_t slots = std::size_t{1} << 16U);

    ComputeCache(const ComputeCache&) = delete;
    ComputeCache& operator=(const ComputeCache&) = delete;

    /// nullopt on miss; a copy of the entry otherwise. `ratio` is
    /// y.weight / x.weight for Add and ignored (pass {}) for InnerProduct.
    [[nodiscard]] std::optional<Result> lookup(Op op, NodeRef x, NodeRef y,
                                               const Complex& ratio);
    void store(Op op, NodeRef x, NodeRef y, const Complex& ratio, const Result& result);

    /// Session GC hook: rewrite every valid entry's node refs through
    /// `remap` (old ref -> new ref, kNoNode marks a collected node) and
    /// invalidate entries naming a dead node. Survivors are re-slotted —
    /// a slot index hashes the refs, so a remapped key lives in a new slot
    /// — which keeps post-GC lookups hitting (repeat verifications resolve
    /// from the cache after a compaction). Returns the number of entries
    /// invalidated, which is also added to the eviction counter.
    /// Single-threaded: the session-GC caller guarantees quiescence.
    std::uint64_t compact(const std::vector<NodeRef>& remap);

    [[nodiscard]] ComputeCacheStats stats() const noexcept;
    void resetStats() noexcept;

private:
    struct Entry {
        NodeRef x = kNoNode;
        NodeRef y = kNoNode;
        std::int64_t ratioRe = 0;
        std::int64_t ratioIm = 0;
        Result result;
        Op op = Op::Add;
        bool valid = false;
    };

    static constexpr std::size_t kMaxStripes = 64;

    [[nodiscard]] std::size_t slotOf(Op op, NodeRef x, NodeRef y, std::int64_t re,
                                     std::int64_t im) const noexcept;
    /// Allocate entries + stripe mutexes on the first store (double-checked
    /// on `allocated_`), so diagram-private stores that never apply an
    /// operation pay nothing for the cache.
    void ensureAllocated();

    double tolerance_;
    std::size_t slotCount_;
    std::size_t stripeMask_;
    std::unique_ptr<Entry[]> entries_;
    std::unique_ptr<std::mutex[]> stripes_;
    std::atomic<bool> allocated_{false};
    std::mutex allocMutex_;
    std::atomic<std::uint64_t> lookups_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

/// A decision-diagram node pool: the unique terminal at slot 0 plus every
/// allocated internal node. Private stores append; interning stores route
/// every allocation through the uniquing table (see file header). An
/// interning store is safe for concurrent allocation and reading: the
/// probe-then-allocate step runs under the key's shard mutex, and the
/// chunked pool keeps node addresses stable so readers never need a lock.
class DdNodeStore {
public:
    enum class Mode {
        Private,   ///< one diagram, append-only, in-place mutation allowed
        Interning, ///< session-shared, hash-consed, nodes immutable
    };

    explicit DdNodeStore(Mode mode, double tolerance = Tolerance::kDefault);
    /// Deep copy (DecisionDiagram value semantics). Private stores only:
    /// session-backed diagrams alias their store instead of copying it.
    DdNodeStore(const DdNodeStore& other);
    DdNodeStore& operator=(const DdNodeStore&) = delete;

    [[nodiscard]] bool interning() const noexcept { return mode_ == Mode::Interning; }
    [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
    [[nodiscard]] std::size_t size() const noexcept { return pool_.size(); }

    [[nodiscard]] const DDNode& node(NodeRef ref) const;
    /// In-place access — refused on an interning store, whose nodes other
    /// diagrams may share.
    [[nodiscard]] DDNode& mutableNode(NodeRef ref);

    /// Allocate (Private) or intern (Interning) a node. On an interning
    /// store this is safe to call from concurrent batch items: exactly one
    /// node is created per distinct structural key, and losers of an
    /// insertion race receive the winner's canonical ref.
    NodeRef allocate(std::uint32_t site, std::vector<DDEdge> edges);

    /// Replace the whole pool (garbageCollect on a private store).
    void replaceNodes(std::vector<DDNode> nodes);

    /// What one mark-and-compact pass did (see compactLive).
    struct CompactionStats {
        std::size_t nodesBefore = 0;
        std::size_t nodesAfter = 0;
        std::uint64_t cacheEvicted = 0;
    };

    /// Session GC (interning stores only — private diagrams use
    /// DecisionDiagram::garbageCollect): mark every node reachable from
    /// `roots` (the terminal is always live), compact the pool to the
    /// survivors in ascending-ref order — so the compacted pool is
    /// deterministic whenever the pre-GC pool was — rebuild the uniquing
    /// table over them, and remap/evict the compute cache.
    /// `remapOut[oldRef]` is the survivor's new ref, kNoNode for a
    /// collected node. Single-threaded: callers guarantee no concurrent
    /// session use (DdSession::garbageCollect is the public entry point
    /// and states the full contract).
    CompactionStats compactLive(const std::vector<NodeRef>& roots,
                                std::vector<NodeRef>& remapOut);

    [[nodiscard]] UniqueTable& uniqueTable() noexcept { return table_; }
    [[nodiscard]] const UniqueTable& uniqueTable() const noexcept { return table_; }
    [[nodiscard]] ComputeCache& computeCache() noexcept { return computeCache_; }
    [[nodiscard]] const ComputeCache& computeCache() const noexcept { return computeCache_; }

private:
    Mode mode_;
    double tolerance_;
    detail::ChunkedNodePool<DDNode> pool_;
    UniqueTable table_;
    ComputeCache computeCache_;
};

/// Aggregate statistics of one session: live pool size plus the uniquing
/// and compute-cache counters — the `dd_nodes` / `unique_hit_rate` /
/// `cache_hit_rate` metrics the bench harness and the CLI tools report.
/// `poolNodes` (the distinct structural keys interned) is invariant under
/// thread count and batch-item order; the hit rates of *concurrent* batches
/// depend on the interleaving and are reported as observed.
struct DdSessionStats {
    std::uint64_t poolNodes = 0; ///< allocated nodes incl. the terminal
    UniqueTableStats unique;
    ComputeCacheStats cache;

    [[nodiscard]] double uniqueHitRate() const noexcept { return unique.hitRate(); }
    [[nodiscard]] double cacheHitRate() const noexcept { return cache.hitRate(); }
};

/// What one DdSession::garbageCollect pass did: pool size either side of
/// the compaction, compute-cache entries evicted for naming a collected
/// node, and how many live roots anchored the mark.
struct DdSessionGcStats {
    std::uint64_t nodesBefore = 0;
    std::uint64_t nodesAfter = 0;
    std::uint64_t cacheEntriesEvicted = 0;
    std::uint64_t liveRoots = 0;
};

/// A DD evaluation session: one shared interning store for every diagram
/// the owner touches. `DdBackend` holds one for its whole lifetime, so the
/// target, the replayed state, and every per-gate intermediate of a
/// verification run allocate from (and hit into) the same table — including
/// the items of a concurrent `verifyBatch`, which intern into
/// this one session from every worker.
///
/// Lifetime/ownership contract: diagrams built by a session hold a
/// shared_ptr to the session's store, so they remain valid after the
/// session object is gone — but they are immutable (the in-place mutators
/// throw) and copying them is O(1) aliasing, not a deep copy. The session
/// is deliberately scoped, not process-global: a global table would make
/// node lifetime unmanageable across unrelated workloads.
class DdSession {
public:
    explicit DdSession(double tolerance = Tolerance::kDefault);

    [[nodiscard]] double tolerance() const noexcept { return store_->tolerance(); }
    [[nodiscard]] const std::shared_ptr<DdNodeStore>& store() const noexcept { return store_; }

    /// --- canonical builders on the shared store ------------------------
    /// Same states as the DecisionDiagram statics, but hash-consed: the
    /// result is the reduced (DAG) form and repeated builds are table hits.
    [[nodiscard]] DecisionDiagram zeroState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram basisState(const Dimensions& dims, const Digits& digits) const;
    [[nodiscard]] DecisionDiagram ghzState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram wState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram embeddedWState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram uniformState(const Dimensions& dims) const;
    [[nodiscard]] DecisionDiagram cyclicState(const Dimensions& dims, const Digits& start,
                                              std::uint32_t count) const;
    [[nodiscard]] DecisionDiagram dickeState(const Dimensions& dims,
                                             std::uint64_t weight) const;

    /// DD-native replay of a circuit from |0...0> on the shared store.
    /// Interning keeps every intermediate canonical, so no per-gate
    /// reduce/garbage-collect pass is needed (or performed).
    [[nodiscard]] DecisionDiagram simulate(const Circuit& circuit) const;

    /// Import a foreign diagram: rebuild its reachable nodes through the
    /// session table (bottom-up, memoized). Sub-trees the session has
    /// already built elsewhere come back as table hits.
    [[nodiscard]] DecisionDiagram intern(const DecisionDiagram& diagram) const;

    /// Mark-and-compact the session store down to the diagrams in `live`
    /// (plus the terminal). EVERY session-backed diagram still in use must
    /// be listed — aliasing copies included; a diagram not listed has its
    /// nodes reclaimed and is invalidated. Live diagrams get their roots
    /// remapped in place (interior structure stays shared — remapping is
    /// safe because interning made refs canonical, so equal sub-trees were
    /// already one node and the compaction is a pure renumbering), and
    /// surviving compute-cache entries are rewritten to the new refs so
    /// repeat verifications still hit post-compaction. Not thread-safe:
    /// callers guarantee no concurrent use of the session for the duration
    /// (the serve layer serializes GC behind its dispatch lock).
    DdSessionGcStats garbageCollect(const std::vector<DecisionDiagram*>& live) const;

    [[nodiscard]] DdSessionStats stats() const;
    void resetStats();

private:
    std::shared_ptr<DdNodeStore> store_;
};

} // namespace dd
} // namespace mqsp
