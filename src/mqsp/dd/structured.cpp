// DD-native construction of the structured benchmark families (§5 of the
// paper): GHZ, W, embedded W, basis and uniform states assembled directly as
// decision diagrams. No dense amplitude vector is ever allocated, so these
// run on registers whose total dimension exceeds memory by orders of
// magnitude — the target-construction half of breaking the dense O(∏dims)
// verification ceiling (the simulation half is DecisionDiagram::
// simulateCircuit and the backend layer in sim/backend.hpp).
//
// Each tree builder reproduces the tree `fromStateVector` returns on the
// same state: the canonical normalization pushes every node's norm into its
// in-edge and keeps upper weights real non-negative, so synthesis from
// either source emits the same circuit (up to last-ulp rounding in rotation
// angles, where the analytic weights sqrt(T'/T) and the summed norms may
// differ) — pinned by the cross-validation suite and the dd-backend golden
// CLI fixtures. uniformState is the one exception: its tree form *is* the
// full dense tree, so it is returned in reduced (shared-chain) form instead.

#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace mqsp {

DecisionDiagram DecisionDiagram::basisState(const Dimensions& dims, const Digits& digits) {
    DecisionDiagram dd;
    dd.radix_ = MixedRadix(dims);
    requireThat(digits.size() == dd.radix_.numQudits(),
                "DecisionDiagram::basisState: digit count mismatch");
    dd.nodes_.push_back(DDNode{DDNode::kTerminalSite, {}});

    // Weight-1 chain, built bottom-up: site n-1 points at the terminal.
    NodeRef below = 0; // terminal
    for (std::size_t site = dd.radix_.numQudits(); site-- > 0;) {
        const Dimension dim = dd.radix_.dimensionAt(site);
        requireThat(digits[site] < dim,
                    "DecisionDiagram::basisState: digit exceeds dimension");
        std::vector<DDEdge> edges(dim);
        edges[digits[site]] = DDEdge{below, Complex{1.0, 0.0}};
        below = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
    }
    dd.root_ = below;
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::ghzState(const Dimensions& dims) {
    DecisionDiagram dd;
    dd.radix_ = MixedRadix(dims);
    dd.nodes_.push_back(DDNode{DDNode::kTerminalSite, {}});
    const std::size_t n = dd.radix_.numQudits();
    const Dimension m = *std::min_element(dims.begin(), dims.end());

    // One weight-1 chain |k k ... k> per branch k < m. The chains are not
    // shared — tree shape, matching fromStateVector.
    std::vector<DDEdge> rootEdges(dd.radix_.dimensionAt(0));
    const double branchWeight = 1.0 / std::sqrt(static_cast<double>(m));
    for (Dimension k = 0; k < m; ++k) {
        NodeRef below = 0; // terminal
        for (std::size_t site = n; site-- > 1;) {
            std::vector<DDEdge> edges(dd.radix_.dimensionAt(site));
            edges[k] = DDEdge{below, Complex{1.0, 0.0}};
            below = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
        }
        rootEdges[k] = DDEdge{below, Complex{branchWeight, 0.0}};
    }
    dd.root_ = dd.allocate(0, std::move(rootEdges));
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

namespace {

/// Number of excitation levels each qudit contributes to a W-family state:
/// levels 1..d_i-1 for the full W state, level 1 only for the embedded one.
enum class WFamily { Full, Embedded };

[[nodiscard]] Dimension excitationLevels(WFamily family, Dimension dim) {
    return family == WFamily::Embedded ? Dimension{1} : dim - 1;
}

} // namespace

/// Shared W-family builder. With T_i the number of W terms contributed by
/// sites i..n-1, the node at site i carries edge 0 -> (W sub-state on the
/// suffix) with weight sqrt(T_{i+1}/T_i) and one edge per excitation level
/// l with weight 1/sqrt(T_i) -> an all-|0> chain; per-node normalization
/// holds by construction ((T_{i+1} + L_i)/T_i = 1).
DecisionDiagram DecisionDiagram::buildWTree(const Dimensions& dims, int familyTag) {
    const WFamily family = familyTag == 0 ? WFamily::Full : WFamily::Embedded;
    DecisionDiagram dd;
    dd.radix_ = MixedRadix(dims);
    dd.nodes_.push_back(DDNode{DDNode::kTerminalSite, {}});
    const std::size_t n = dd.radix_.numQudits();

    // Suffix term counts T_i (T_n = 0).
    std::vector<std::uint64_t> suffixTerms(n + 1, 0);
    for (std::size_t site = n; site-- > 0;) {
        suffixTerms[site] =
            suffixTerms[site + 1] + excitationLevels(family, dd.radix_.dimensionAt(site));
    }

    // Fresh all-|0> suffix chain below `site` (one copy per use: tree shape).
    const auto zeroChain = [&dd, n](std::size_t site) -> NodeRef {
        NodeRef below = 0; // terminal
        for (std::size_t s = n; s-- > site;) {
            std::vector<DDEdge> edges(dd.radix_.dimensionAt(s));
            edges[0] = DDEdge{below, Complex{1.0, 0.0}};
            below = dd.allocate(static_cast<std::uint32_t>(s), std::move(edges));
        }
        return below;
    };

    // Build the W spine bottom-up.
    NodeRef spine = kNoNode;
    for (std::size_t site = n; site-- > 0;) {
        const Dimension dim = dd.radix_.dimensionAt(site);
        const Dimension levels = excitationLevels(family, dim);
        const double total = static_cast<double>(suffixTerms[site]);
        std::vector<DDEdge> edges(dim);
        if (suffixTerms[site + 1] > 0) {
            edges[0] = DDEdge{
                spine,
                Complex{std::sqrt(static_cast<double>(suffixTerms[site + 1]) / total), 0.0}};
        }
        const double excitationWeight = 1.0 / std::sqrt(total);
        for (Dimension l = 1; l <= levels; ++l) {
            edges[l] = DDEdge{zeroChain(site + 1), Complex{excitationWeight, 0.0}};
        }
        spine = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
    }
    dd.root_ = spine;
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::wState(const Dimensions& dims) {
    return buildWTree(dims, /*familyTag=*/0);
}

DecisionDiagram DecisionDiagram::embeddedWState(const Dimensions& dims) {
    return buildWTree(dims, /*familyTag=*/1);
}

DecisionDiagram DecisionDiagram::uniformState(const Dimensions& dims) {
    DecisionDiagram dd;
    dd.radix_ = MixedRadix(dims);
    dd.nodes_.push_back(DDNode{DDNode::kTerminalSite, {}});

    // One shared chain: node at site s has d_s edges of weight 1/sqrt(d_s),
    // all pointing at the same child — already the reduced (DAG) form.
    NodeRef below = 0; // terminal
    for (std::size_t site = dd.radix_.numQudits(); site-- > 0;) {
        const Dimension dim = dd.radix_.dimensionAt(site);
        const double weight = 1.0 / std::sqrt(static_cast<double>(dim));
        std::vector<DDEdge> edges(dim);
        for (Dimension k = 0; k < dim; ++k) {
            edges[k] = DDEdge{below, Complex{weight, 0.0}};
        }
        below = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
    }
    dd.root_ = below;
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

} // namespace mqsp
