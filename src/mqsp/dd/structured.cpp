// DD-native construction of the structured benchmark families (§5 of the
// paper): GHZ, W, embedded W, basis, uniform, cyclic and Dicke states
// assembled directly as decision diagrams. No dense amplitude vector is ever
// allocated, so these run on registers whose total dimension exceeds memory
// by orders of magnitude — the target-construction half of breaking the
// dense O(∏dims) verification ceiling (the simulation half is
// DecisionDiagram::simulateCircuit and the backend layer in sim/backend.hpp).
//
// Each tree builder reproduces the tree `fromStateVector` returns on the
// same state: the canonical normalization pushes every node's norm into its
// in-edge and keeps upper weights real non-negative, so synthesis from
// either source emits the same circuit (up to last-ulp rounding in rotation
// angles, where the analytic weights sqrt(T'/T) and the summed norms may
// differ) — pinned by the cross-validation suite and the dd-backend golden
// CLI fixtures. uniformState, cyclicState and dickeState are the exceptions:
// their tree forms are combinatorial (the full dense tree / one chain per
// shift / one leaf per fixed-weight term), so they are returned in reduced
// (DAG) form — which the path-wise synthesis traversal expands to exactly
// the circuit the tree would have produced.
//
// Every builder takes an optional node store: the public statics pass
// nullptr (a fresh diagram-private store, historical semantics), while
// dd::DdSession routes its shared interning store through the *On hooks so
// identical sub-trees are built once per session, whatever diagram asked
// first (dd/unique_table.hpp).

#include "mqsp/dd/decision_diagram.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

namespace mqsp {

DecisionDiagram DecisionDiagram::basisStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                              const Dimensions& dims, const Digits& digits) {
    DecisionDiagram dd(std::move(store), dims);
    requireThat(digits.size() == dd.radix_.numQudits(),
                "DecisionDiagram::basisState: digit count mismatch");

    // Weight-1 chain, built bottom-up: site n-1 points at the terminal.
    NodeRef below = 0; // terminal
    for (std::size_t site = dd.radix_.numQudits(); site-- > 0;) {
        const Dimension dim = dd.radix_.dimensionAt(site);
        requireThat(digits[site] < dim,
                    "DecisionDiagram::basisState: digit exceeds dimension");
        std::vector<DDEdge> edges(dim);
        edges[digits[site]] = DDEdge{below, Complex{1.0, 0.0}};
        below = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
    }
    dd.root_ = below;
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::basisState(const Dimensions& dims, const Digits& digits) {
    return basisStateOn(nullptr, dims, digits);
}

DecisionDiagram DecisionDiagram::ghzStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                            const Dimensions& dims) {
    DecisionDiagram dd(std::move(store), dims);
    const std::size_t n = dd.radix_.numQudits();
    const Dimension m = *std::min_element(dims.begin(), dims.end());

    // One weight-1 chain |k k ... k> per branch k < m. The chains are not
    // shared on a private store — tree shape, matching fromStateVector (an
    // interning store dedupes nothing here either: the chains differ per k).
    std::vector<DDEdge> rootEdges(dd.radix_.dimensionAt(0));
    const double branchWeight = 1.0 / std::sqrt(static_cast<double>(m));
    for (Dimension k = 0; k < m; ++k) {
        NodeRef below = 0; // terminal
        for (std::size_t site = n; site-- > 1;) {
            std::vector<DDEdge> edges(dd.radix_.dimensionAt(site));
            edges[k] = DDEdge{below, Complex{1.0, 0.0}};
            below = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
        }
        rootEdges[k] = DDEdge{below, Complex{branchWeight, 0.0}};
    }
    dd.root_ = dd.allocate(0, std::move(rootEdges));
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::ghzState(const Dimensions& dims) {
    return ghzStateOn(nullptr, dims);
}

namespace {

/// Number of excitation levels each qudit contributes to a W-family state:
/// levels 1..d_i-1 for the full W state, level 1 only for the embedded one.
enum class WFamily { Full, Embedded };

[[nodiscard]] Dimension excitationLevels(WFamily family, Dimension dim) {
    return family == WFamily::Embedded ? Dimension{1} : dim - 1;
}

} // namespace

/// Shared W-family builder. With T_i the number of W terms contributed by
/// sites i..n-1, the node at site i carries edge 0 -> (W sub-state on the
/// suffix) with weight sqrt(T_{i+1}/T_i) and one edge per excitation level
/// l with weight 1/sqrt(T_i) -> an all-|0> chain; per-node normalization
/// holds by construction ((T_{i+1} + L_i)/T_i = 1).
DecisionDiagram DecisionDiagram::wStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                          const Dimensions& dims, int familyTag) {
    const WFamily family = familyTag == 0 ? WFamily::Full : WFamily::Embedded;
    DecisionDiagram dd(std::move(store), dims);
    const std::size_t n = dd.radix_.numQudits();

    // Suffix term counts T_i (T_n = 0).
    std::vector<std::uint64_t> suffixTerms(n + 1, 0);
    for (std::size_t site = n; site-- > 0;) {
        suffixTerms[site] =
            suffixTerms[site + 1] + excitationLevels(family, dd.radix_.dimensionAt(site));
    }

    // Fresh all-|0> suffix chain below `site` (one copy per use on a
    // private store: tree shape; an interning store collapses them).
    const auto zeroChain = [&dd, n](std::size_t site) -> NodeRef {
        NodeRef below = 0; // terminal
        for (std::size_t s = n; s-- > site;) {
            std::vector<DDEdge> edges(dd.radix_.dimensionAt(s));
            edges[0] = DDEdge{below, Complex{1.0, 0.0}};
            below = dd.allocate(static_cast<std::uint32_t>(s), std::move(edges));
        }
        return below;
    };

    // Build the W spine bottom-up.
    NodeRef spine = kNoNode;
    for (std::size_t site = n; site-- > 0;) {
        const Dimension dim = dd.radix_.dimensionAt(site);
        const Dimension levels = excitationLevels(family, dim);
        const double total = static_cast<double>(suffixTerms[site]);
        std::vector<DDEdge> edges(dim);
        if (suffixTerms[site + 1] > 0) {
            edges[0] = DDEdge{
                spine,
                Complex{std::sqrt(static_cast<double>(suffixTerms[site + 1]) / total), 0.0}};
        }
        const double excitationWeight = 1.0 / std::sqrt(total);
        for (Dimension l = 1; l <= levels; ++l) {
            edges[l] = DDEdge{zeroChain(site + 1), Complex{excitationWeight, 0.0}};
        }
        spine = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
    }
    dd.root_ = spine;
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::wState(const Dimensions& dims) {
    return wStateOn(nullptr, dims, /*familyTag=*/0);
}

DecisionDiagram DecisionDiagram::embeddedWState(const Dimensions& dims) {
    return wStateOn(nullptr, dims, /*familyTag=*/1);
}

DecisionDiagram DecisionDiagram::uniformStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                                const Dimensions& dims) {
    DecisionDiagram dd(std::move(store), dims);

    // One shared chain: node at site s has d_s edges of weight 1/sqrt(d_s),
    // all pointing at the same child — already the reduced (DAG) form.
    NodeRef below = 0; // terminal
    for (std::size_t site = dd.radix_.numQudits(); site-- > 0;) {
        const Dimension dim = dd.radix_.dimensionAt(site);
        const double weight = 1.0 / std::sqrt(static_cast<double>(dim));
        std::vector<DDEdge> edges(dim);
        for (Dimension k = 0; k < dim; ++k) {
            edges[k] = DDEdge{below, Complex{weight, 0.0}};
        }
        below = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
    }
    dd.root_ = below;
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::uniformState(const Dimensions& dims) {
    return uniformStateOn(nullptr, dims);
}

/// Cyclic state as a DAG. Shift k produces the word ((start_i + k) mod
/// d_i)_i; shifts congruent modulo lcm(dims) produce the same word, so the
/// distinct shifts are 0..K-1 with K = min(count, lcm). The node deciding
/// site s for a surviving shift set S partitions S by the digit the shifts
/// put there; the edge to the part S_v carries weight sqrt(|S_v|/|S|) —
/// exactly the block norms `fromStateVector` computes on the equal-amplitude
/// dense vector, so the reduced tree and this DAG coincide. Sub-diagrams are
/// memoized on (site, shift set).
DecisionDiagram DecisionDiagram::cyclicStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                               const Dimensions& dims, const Digits& start,
                                               std::uint32_t count) {
    DecisionDiagram dd(std::move(store), dims);
    const std::size_t n = dd.radix_.numQudits();
    requireThat(start.size() == n, "DecisionDiagram::cyclicState: start word size mismatch");
    requireThat(count >= 1, "DecisionDiagram::cyclicState: need at least one shift");
    for (std::size_t site = 0; site < n; ++site) {
        requireThat(start[site] < dd.radix_.dimensionAt(site),
                    "DecisionDiagram::cyclicState: start digit exceeds dimension");
    }

    // Distinct shifts: cap count at lcm(dims) (saturating — once the lcm
    // passes `count` every requested shift is already distinct).
    std::uint64_t lcmSoFar = 1;
    for (const Dimension dim : dims) {
        lcmSoFar = std::lcm(lcmSoFar, static_cast<std::uint64_t>(dim));
        if (lcmSoFar >= count) {
            lcmSoFar = count;
            break;
        }
    }
    const auto numShifts = static_cast<std::uint32_t>(std::min<std::uint64_t>(count, lcmSoFar));

    std::vector<std::uint32_t> allShifts(numShifts);
    for (std::uint32_t k = 0; k < numShifts; ++k) {
        allShifts[k] = k;
    }

    if (dd.sessionBacked()) {
        // Level-synchronous build for session stores: the distinct shift
        // sets of each level are partitioned in parallel (pure compute),
        // then deduplicated and interned *sequentially* in canonical order
        // — first-seen within a level, levels bottom-up — so the session's
        // allocation order, and with it every downstream NodeRef-keyed
        // metric, is identical at any thread count.
        std::vector<std::vector<std::uint32_t>> sets{std::move(allShifts)};
        // plans[s][i][v]: (child set index at level s+1, edge weight);
        // index kNoNode = structural zero.
        std::vector<std::vector<std::vector<std::pair<std::uint32_t, double>>>> plans(n);
        std::vector<std::size_t> levelWidths(n + 1);
        for (std::size_t site = 0; site < n; ++site) {
            levelWidths[site] = sets.size();
            const Dimension dim = dd.radix_.dimensionAt(site);
            std::vector<std::vector<std::vector<std::uint32_t>>> parts(sets.size());
            parallel::parallelFor(0, sets.size(), 1, [&](std::uint64_t b, std::uint64_t e) {
                for (std::uint64_t i = b; i < e; ++i) {
                    parts[i].assign(dim, {});
                    for (const std::uint32_t k : sets[i]) {
                        parts[i][(start[site] + k) % dim].push_back(k);
                    }
                }
            });
            std::map<std::vector<std::uint32_t>, std::uint32_t> index;
            std::vector<std::vector<std::uint32_t>> next;
            plans[site].resize(sets.size());
            for (std::size_t i = 0; i < sets.size(); ++i) {
                plans[site][i].assign(dim, {kNoNode, 0.0});
                for (Dimension v = 0; v < dim; ++v) {
                    std::vector<std::uint32_t>& part = parts[i][v];
                    if (part.empty()) {
                        continue;
                    }
                    const double weight = std::sqrt(static_cast<double>(part.size()) /
                                                    static_cast<double>(sets[i].size()));
                    const auto [it, inserted] =
                        index.try_emplace(part, static_cast<std::uint32_t>(next.size()));
                    if (inserted) {
                        next.push_back(std::move(part));
                    }
                    plans[site][i][v] = {it->second, weight};
                }
            }
            sets = std::move(next);
        }
        levelWidths[n] = sets.size();
        // Bottom-up intern: every surviving set at level n is the terminal.
        std::vector<NodeRef> below(levelWidths[n], 0);
        for (std::size_t site = n; site-- > 0;) {
            const Dimension dim = dd.radix_.dimensionAt(site);
            std::vector<NodeRef> refs(levelWidths[site]);
            for (std::size_t i = 0; i < levelWidths[site]; ++i) {
                std::vector<DDEdge> edges(dim);
                for (Dimension v = 0; v < dim; ++v) {
                    const auto& [child, weight] = plans[site][i][v];
                    if (child == kNoNode) {
                        continue;
                    }
                    edges[v] = DDEdge{below[child], Complex{weight, 0.0}};
                }
                refs[i] = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
            }
            below = std::move(refs);
        }
        dd.root_ = below[0];
        dd.rootWeight_ = Complex{1.0, 0.0};
        return dd;
    }

    // Memoized recursive build over (site, surviving shift set). The shift
    // sets are kept sorted, so the map key is canonical.
    std::map<std::pair<std::size_t, std::vector<std::uint32_t>>, NodeRef> memo;
    const std::function<NodeRef(std::size_t, const std::vector<std::uint32_t>&)> build =
        [&](std::size_t site, const std::vector<std::uint32_t>& shifts) -> NodeRef {
        if (site == n) {
            return 0; // terminal
        }
        const auto key = std::make_pair(site, shifts);
        if (const auto it = memo.find(key); it != memo.end()) {
            return it->second;
        }
        const Dimension dim = dd.radix_.dimensionAt(site);
        std::vector<std::vector<std::uint32_t>> parts(dim);
        for (const std::uint32_t k : shifts) {
            parts[(start[site] + k) % dim].push_back(k);
        }
        std::vector<DDEdge> edges(dim);
        for (Dimension v = 0; v < dim; ++v) {
            if (parts[v].empty()) {
                continue;
            }
            const double weight = std::sqrt(static_cast<double>(parts[v].size()) /
                                            static_cast<double>(shifts.size()));
            edges[v] = DDEdge{build(site + 1, parts[v]), Complex{weight, 0.0}};
        }
        const NodeRef ref = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
        memo.emplace(key, ref);
        return ref;
    };

    dd.root_ = build(0, allShifts);
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::cyclicState(const Dimensions& dims, const Digits& start,
                                             std::uint32_t count) {
    return cyclicStateOn(nullptr, dims, start, count);
}

/// Dicke state as the standard (site, remaining-weight) DAG: the node for
/// (s, w) decides site s with w excitation weight still to place; edge l
/// points at (s+1, w-l) with weight sqrt(N(s+1, w-l) / N(s, w)), where
/// N(s, w) counts the suffix digit-strings of sum w. Every tree node of the
/// dense construction whose prefix sums to the same value is structurally
/// identical, so the reduced tree collapses to exactly this DAG — the
/// family where cross-diagram sharing pays most, since replay intermediates
/// revisit the same (s, w) blocks.
DecisionDiagram DecisionDiagram::dickeStateOn(std::shared_ptr<dd::DdNodeStore> store,
                                              const Dimensions& dims, std::uint64_t weight) {
    DecisionDiagram dd(std::move(store), dims);
    const std::size_t n = dd.radix_.numQudits();

    // Reject unreachable weights before sizing the DP tables by `weight`.
    std::uint64_t maxWeight = 0;
    for (const Dimension dim : dims) {
        maxWeight += dim - 1;
    }
    requireThat(weight <= maxWeight,
                "DecisionDiagram::dickeState: no basis state has the requested weight");

    // N(s, w) for w <= weight, bottom-up. N(n, 0) = 1.
    std::vector<std::vector<std::uint64_t>> counts(n + 1,
                                                   std::vector<std::uint64_t>(weight + 1, 0));
    counts[n][0] = 1;
    for (std::size_t site = n; site-- > 0;) {
        const Dimension dim = dd.radix_.dimensionAt(site);
        for (std::uint64_t w = 0; w <= weight; ++w) {
            std::uint64_t total = 0;
            for (Dimension level = 0; level < dim && level <= w; ++level) {
                total += counts[site + 1][w - level];
            }
            counts[site][w] = total;
        }
    }
    requireThat(counts[0][weight] > 0,
                "DecisionDiagram::dickeState: no basis state has the requested weight");

    if (dd.sessionBacked()) {
        // Level-synchronous build for session stores: the reachable
        // remaining-weight sets are computed forward from the root, each
        // level's edge lists are staged in parallel (pure compute), and the
        // nodes are interned sequentially in ascending-weight order — so
        // the session's allocation order is identical at any thread count.
        std::vector<std::vector<std::uint64_t>> reach(n + 1);
        reach[0] = {weight};
        for (std::size_t site = 0; site < n; ++site) {
            const Dimension dim = dd.radix_.dimensionAt(site);
            std::vector<char> mark(weight + 1, 0);
            for (const std::uint64_t w : reach[site]) {
                for (Dimension level = 0; level < dim && level <= w; ++level) {
                    if (counts[site + 1][w - level] > 0) {
                        mark[w - level] = 1;
                    }
                }
            }
            for (std::uint64_t w = 0; w <= weight; ++w) {
                if (mark[w] != 0) {
                    reach[site + 1].push_back(w);
                }
            }
        }
        std::vector<NodeRef> below(reach[n].size(), 0); // level n: the terminal
        for (std::size_t site = n; site-- > 0;) {
            const Dimension dim = dd.radix_.dimensionAt(site);
            std::vector<std::uint32_t> childIndex(weight + 1,
                                                  std::numeric_limits<std::uint32_t>::max());
            for (std::size_t i = 0; i < reach[site + 1].size(); ++i) {
                childIndex[reach[site + 1][i]] = static_cast<std::uint32_t>(i);
            }
            std::vector<std::vector<DDEdge>> staged(reach[site].size());
            parallel::parallelFor(0, reach[site].size(), 1,
                                  [&](std::uint64_t b, std::uint64_t e) {
                for (std::uint64_t i = b; i < e; ++i) {
                    const std::uint64_t w = reach[site][i];
                    const auto total = static_cast<double>(counts[site][w]);
                    std::vector<DDEdge> edges(dim);
                    for (Dimension level = 0; level < dim && level <= w; ++level) {
                        const std::uint64_t belowCount = counts[site + 1][w - level];
                        if (belowCount == 0) {
                            continue;
                        }
                        const double edgeWeight =
                            std::sqrt(static_cast<double>(belowCount) / total);
                        edges[level] = DDEdge{below[childIndex[w - level]],
                                              Complex{edgeWeight, 0.0}};
                    }
                    staged[i] = std::move(edges);
                }
            });
            std::vector<NodeRef> refs(reach[site].size());
            for (std::size_t i = 0; i < reach[site].size(); ++i) {
                refs[i] = dd.allocate(static_cast<std::uint32_t>(site),
                                      std::move(staged[i]));
            }
            below = std::move(refs);
        }
        dd.root_ = below[0];
        dd.rootWeight_ = Complex{1.0, 0.0};
        return dd;
    }

    // One node per reachable (site, remaining weight); memoized directly.
    std::vector<std::vector<NodeRef>> memo(n, std::vector<NodeRef>(weight + 1, kNoNode));
    const std::function<NodeRef(std::size_t, std::uint64_t)> build =
        [&](std::size_t site, std::uint64_t remaining) -> NodeRef {
        if (site == n) {
            return 0; // terminal (remaining == 0 by construction)
        }
        if (memo[site][remaining] != kNoNode) {
            return memo[site][remaining];
        }
        const Dimension dim = dd.radix_.dimensionAt(site);
        const auto total = static_cast<double>(counts[site][remaining]);
        std::vector<DDEdge> edges(dim);
        for (Dimension level = 0; level < dim && level <= remaining; ++level) {
            const std::uint64_t below = counts[site + 1][remaining - level];
            if (below == 0) {
                continue;
            }
            const double edgeWeight = std::sqrt(static_cast<double>(below) / total);
            edges[level] =
                DDEdge{build(site + 1, remaining - level), Complex{edgeWeight, 0.0}};
        }
        const NodeRef ref = dd.allocate(static_cast<std::uint32_t>(site), std::move(edges));
        memo[site][remaining] = ref;
        return ref;
    };

    dd.root_ = build(0, weight);
    dd.rootWeight_ = Complex{1.0, 0.0};
    return dd;
}

DecisionDiagram DecisionDiagram::dickeState(const Dimensions& dims, std::uint64_t weight) {
    return dickeStateOn(nullptr, dims, weight);
}

} // namespace mqsp
