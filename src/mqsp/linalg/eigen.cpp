#include "mqsp/linalg/eigen.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mqsp {

bool isHermitian(const DenseMatrix& matrix, double tol) {
    const std::size_t n = matrix.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            if (std::abs(matrix(i, j) - std::conj(matrix(j, i))) > tol) {
                return false;
            }
        }
    }
    return true;
}

Complex traceOf(const DenseMatrix& matrix) {
    Complex sum{0.0, 0.0};
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        sum += matrix(i, i);
    }
    return sum;
}

namespace {

/// Squared Frobenius norm of the strict off-diagonal part.
double offDiagonalMass(const DenseMatrix& a) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < a.size(); ++j) {
            if (i != j) {
                sum += std::norm(a(i, j));
            }
        }
    }
    return sum;
}

double frobeniusMass(const DenseMatrix& a) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < a.size(); ++j) {
            sum += std::norm(a(i, j));
        }
    }
    return sum;
}

/// One two-sided complex Jacobi rotation zeroing a(p, q):
///   A <- U^H A U,  V <- V U,
/// where U acts on the (p, q) plane as diag(1, e^{-i phi}) * G(theta) with
/// phi = arg a(p, q) and G the real Givens rotation diagonalizing the
/// phase-stripped 2x2 block.
void rotate(DenseMatrix& a, DenseMatrix& v, std::size_t p, std::size_t q) {
    const Complex apq = a(p, q);
    const double r = std::abs(apq);
    if (r == 0.0) {
        return;
    }
    const double phi = std::arg(apq);
    const double alpha = a(p, p).real();
    const double beta = a(q, q).real();
    const double tau = (beta - alpha) / (2.0 * r);
    const double t = (tau >= 0.0 ? 1.0 : -1.0) / (std::abs(tau) + std::sqrt(1.0 + tau * tau));
    const double c = 1.0 / std::sqrt(1.0 + t * t);
    const double s = t * c;

    // Column-space action: U has U(p,p) = c, U(p,q) = s, U(q,p) = -s e^{-i phi},
    // U(q,q) = c e^{-i phi} (the phase-stripping diag folded into row q).
    const Complex upp{c, 0.0};
    const Complex upq{s, 0.0};
    const Complex uqp = Complex{-s, 0.0} * Complex{std::cos(-phi), std::sin(-phi)};
    const Complex uqq = Complex{c, 0.0} * Complex{std::cos(-phi), std::sin(-phi)};

    const std::size_t n = a.size();
    // A <- A U (columns p, q mix).
    for (std::size_t i = 0; i < n; ++i) {
        const Complex aip = a(i, p);
        const Complex aiq = a(i, q);
        a(i, p) = aip * upp + aiq * uqp;
        a(i, q) = aip * upq + aiq * uqq;
    }
    // A <- U^H A (rows p, q mix with conjugated coefficients).
    for (std::size_t j = 0; j < n; ++j) {
        const Complex apj = a(p, j);
        const Complex aqj = a(q, j);
        a(p, j) = std::conj(upp) * apj + std::conj(uqp) * aqj;
        a(q, j) = std::conj(upq) * apj + std::conj(uqq) * aqj;
    }
    // Clean the rotated pair exactly.
    a(p, q) = Complex{0.0, 0.0};
    a(q, p) = Complex{0.0, 0.0};
    a(p, p) = Complex{a(p, p).real(), 0.0};
    a(q, q) = Complex{a(q, q).real(), 0.0};

    // Accumulate V <- V U.
    for (std::size_t i = 0; i < n; ++i) {
        const Complex vip = v(i, p);
        const Complex viq = v(i, q);
        v(i, p) = vip * upp + viq * uqp;
        v(i, q) = vip * upq + viq * uqq;
    }
}

} // namespace

EigenResult eigenHermitian(const DenseMatrix& matrix, double tol, double hermTol) {
    requireThat(matrix.size() > 0, "eigenHermitian: empty matrix");
    requireThat(isHermitian(matrix, hermTol), "eigenHermitian: matrix is not Hermitian");

    const std::size_t n = matrix.size();
    DenseMatrix a = matrix;
    DenseMatrix v = DenseMatrix::identity(n);

    const double total = frobeniusMass(a);
    const double threshold = tol * tol * std::max(total, 1e-300);
    constexpr int kMaxSweeps = 100;
    for (int sweep = 0; sweep < kMaxSweeps && offDiagonalMass(a) > threshold; ++sweep) {
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                if (std::norm(a(p, q)) > threshold / static_cast<double>(n * n)) {
                    rotate(a, v, p, q);
                }
            }
        }
    }
    ensureThat(offDiagonalMass(a) <= std::max(threshold, 1e-20),
               "eigenHermitian: Jacobi iteration did not converge");

    // Sort ascending, permuting eigenvector columns along.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&a](std::size_t x, std::size_t y) {
        return a(x, x).real() < a(y, y).real();
    });

    EigenResult result;
    result.values.reserve(n);
    result.vectors = DenseMatrix(n);
    for (std::size_t k = 0; k < n; ++k) {
        result.values.push_back(a(order[k], order[k]).real());
        for (std::size_t i = 0; i < n; ++i) {
            result.vectors(i, k) = v(i, order[k]);
        }
    }
    return result;
}

} // namespace mqsp
