#pragma once

#include "mqsp/circuit/matrix.hpp"

#include <vector>

namespace mqsp {

/// Result of a Hermitian eigendecomposition: eigenvalues ascending, one
/// eigenvector per column of `vectors` (vectors(i, k) is component i of the
/// k-th eigenvector).
struct EigenResult {
    std::vector<double> values;
    DenseMatrix vectors;
};

/// Eigendecomposition of a Hermitian matrix via the classical cyclic
/// complex Jacobi method: repeatedly zero the largest off-diagonal element
/// with a two-sided complex Givens rotation until the off-diagonal Frobenius
/// mass drops below `tol`. Cubic per sweep, quadratically convergent —
/// entirely adequate for the register-sized density matrices this library
/// meets (dimension <= a few hundred).
///
/// Throws InvalidArgumentError if `matrix` is not Hermitian within `hermTol`.
[[nodiscard]] EigenResult eigenHermitian(const DenseMatrix& matrix, double tol = 1e-12,
                                         double hermTol = 1e-9);

/// True when the matrix equals its own adjoint within tol.
[[nodiscard]] bool isHermitian(const DenseMatrix& matrix, double tol = 1e-9);

/// Trace of a square matrix.
[[nodiscard]] Complex traceOf(const DenseMatrix& matrix);

} // namespace mqsp
