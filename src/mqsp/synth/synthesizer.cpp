#include "mqsp/synth/synthesizer.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace mqsp {

namespace {

/// The node's local weight vector, as the cascade solver sees it (zero
/// stubs become exact zeros).
std::vector<Complex> nodeWeights(const DDNode& node) {
    std::vector<Complex> weights;
    weights.reserve(node.edges.size());
    for (const auto& edge : node.edges) {
        weights.push_back(edge.isZeroStub() ? Complex{0.0, 0.0} : edge.weight);
    }
    return weights;
}

/// Pre-solved cascades for the nodes the emission traversal will visit:
/// slot i holds cascadeFor(weights of nodes[i]). Empty when the precompute
/// phase did not run (single-threaded, nested, or trivial diagrams) — the
/// traversal then solves inline, exactly as it always has.
struct CascadeSlots {
    std::unordered_map<NodeRef, std::size_t> index;
    std::vector<std::vector<CascadeStep>> steps;

    [[nodiscard]] const std::vector<CascadeStep>* find(NodeRef ref) const {
        const auto it = index.find(ref);
        return it == index.end() ? nullptr : &steps[it->second];
    }
};

class SynthesisTraversal {
public:
    SynthesisTraversal(const DecisionDiagram& dd, const SynthesisOptions& options,
                       Circuit& circuit, const CascadeSlots& slots)
        : dd_(dd), options_(options), circuit_(circuit), slots_(slots) {}

    void visit(NodeRef ref, std::vector<Control>& pathControls) {
        const DDNode& node = dd_.node(ref);
        ensureThat(!node.isTerminal(), "synthesize: traversal reached the terminal node");

        // 1. Realize this node's weight vector on its qudit via the cascade
        //    — from the pre-solved slot when the parallel phase ran, else
        //    solved inline. The solve is a pure function of the node's
        //    weights, so both routes yield bit-identical steps; emission
        //    order below is the historical traversal order either way,
        //    keeping the QASM byte-identical at any thread count.
        const std::vector<CascadeStep>* preSolved = slots_.find(ref);
        const std::vector<CascadeStep> inlineSteps =
            preSolved != nullptr ? std::vector<CascadeStep>{}
                                 : cascadeFor(nodeWeights(node));
        const std::vector<CascadeStep>& steps =
            preSolved != nullptr ? *preSolved : inlineSteps;
        for (const auto& step : steps) {
            Operation op =
                (step.kind == CascadeStep::Kind::Phase)
                    ? Operation::phase(node.site, step.levelA, step.levelB, step.theta,
                                       pathControls)
                    : Operation::givens(node.site, step.levelA, step.levelB, step.theta,
                                        step.phi, pathControls);
            if (!options_.emitIdentityOperations && op.isIdentity(options_.tolerance)) {
                continue;
            }
            circuit_.append(std::move(op));
        }

        // 2. Recurse into children. For a tensor-product node (all nonzero
        //    edges share one child) the child is prepared once, without this
        //    node's control — the §4.3 control-elision rule.
        if (options_.elideTensorProductControls && dd_.isTensorProductNode(ref)) {
            for (const auto& edge : node.edges) {
                if (!edge.isZeroStub()) {
                    visit(edge.node, pathControls);
                    break;
                }
            }
            return;
        }
        for (std::size_t k = 0; k < node.edges.size(); ++k) {
            const auto& edge = node.edges[k];
            if (edge.isZeroStub() || dd_.node(edge.node).isTerminal()) {
                continue;
            }
            pathControls.push_back(Control{node.site, static_cast<Level>(k)});
            visit(edge.node, pathControls);
            pathControls.pop_back();
        }
    }

private:
    const DecisionDiagram& dd_;
    const SynthesisOptions& options_;
    Circuit& circuit_;
    const CascadeSlots& slots_;
};

/// The distinct internal nodes the emission traversal will visit, in
/// deterministic DFS order: every non-stub, non-terminal child, visited
/// once. (Tensor-product elision changes which *paths* are walked, not
/// which nodes are reachable — all nonzero edges of such a node share one
/// child — so this set matches the traversal's exactly.)
std::vector<NodeRef> collectEmissionNodes(const DecisionDiagram& dd) {
    std::vector<NodeRef> nodes;
    std::unordered_set<NodeRef> seen;
    std::vector<NodeRef> stack{dd.rootNode()};
    while (!stack.empty()) {
        const NodeRef ref = stack.back();
        stack.pop_back();
        if (!seen.insert(ref).second) {
            continue;
        }
        nodes.push_back(ref);
        const DDNode& node = dd.node(ref);
        for (const auto& edge : node.edges) {
            if (!edge.isZeroStub() && !dd.node(edge.node).isTerminal()) {
                stack.push_back(edge.node);
            }
        }
    }
    return nodes;
}

} // namespace

Circuit synthesize(const DecisionDiagram& dd, const SynthesisOptions& options) {
    Circuit circuit(dd.dimensions(), options.circuitName);
    if (dd.rootNode() == kNoNode) {
        return circuit; // the zero diagram prepares |0...0| trivially
    }

    // Compute-parallel / emit-sequential: the per-node cascade solves are
    // independent pure functions of each node's weight vector — the
    // expensive trigonometry of synthesis — so solve them all via
    // parallelFor into pre-sized slots, then run the historical recursive
    // emission, which reads the slots and appends Operations in the
    // historical node order. The circuit (and its QASM) is byte-identical
    // to the serial result at any thread count. Works on private diagrams
    // too: the precompute only reads the diagram.
    CascadeSlots slots;
    if (parallel::globalThreads() > 1 && !parallel::insideParallelRegion()) {
        const std::vector<NodeRef> nodes = collectEmissionNodes(dd);
        if (nodes.size() > 1) {
            slots.steps.resize(nodes.size());
            slots.index.reserve(nodes.size());
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                slots.index.emplace(nodes[i], i);
            }
            parallel::parallelFor(
                0, nodes.size(), /*grainSize=*/1,
                [&](std::uint64_t begin, std::uint64_t end) {
                    for (std::uint64_t i = begin; i < end; ++i) {
                        slots.steps[i] = cascadeFor(nodeWeights(dd.node(nodes[i])));
                    }
                });
        }
    }

    SynthesisTraversal traversal(dd, options, circuit, slots);
    std::vector<Control> pathControls;
    traversal.visit(dd.rootNode(), pathControls);
    return circuit;
}

PreparationResult prepareExact(const StateVector& state, const SynthesisOptions& options) {
    return prepareExact(DecisionDiagram::fromStateVector(state, options.tolerance),
                        options);
}

PreparationResult prepareExact(DecisionDiagram diagram, const SynthesisOptions& options) {
    PreparationResult result;
    result.diagram = std::move(diagram);
    result.circuit = synthesize(result.diagram, options);
    return result;
}

PreparationResult prepareApproximated(const StateVector& state, double fidelityThreshold,
                                      const SynthesisOptions& options) {
    return prepareApproximated(DecisionDiagram::fromStateVector(state, options.tolerance),
                               fidelityThreshold, options);
}

PreparationResult prepareApproximated(DecisionDiagram diagram, double fidelityThreshold,
                                      const SynthesisOptions& options) {
    PreparationResult result;
    result.diagram = std::move(diagram);
    ApproximationOptions approxOptions;
    approxOptions.fidelityThreshold = fidelityThreshold;
    approxOptions.tolerance = options.tolerance;
    result.approx = approximate(result.diagram, approxOptions);
    result.circuit = synthesize(result.diagram, options);
    return result;
}

} // namespace mqsp
