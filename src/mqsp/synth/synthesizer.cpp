#include "mqsp/synth/synthesizer.hpp"

#include "mqsp/support/error.hpp"

#include <functional>
#include <utility>

namespace mqsp {

namespace {

class SynthesisTraversal {
public:
    SynthesisTraversal(const DecisionDiagram& dd, const SynthesisOptions& options,
                       Circuit& circuit)
        : dd_(dd), options_(options), circuit_(circuit) {}

    void visit(NodeRef ref, std::vector<Control>& pathControls) {
        const DDNode& node = dd_.node(ref);
        ensureThat(!node.isTerminal(), "synthesize: traversal reached the terminal node");

        // 1. Realize this node's weight vector on its qudit via the cascade.
        std::vector<Complex> weights;
        weights.reserve(node.edges.size());
        for (const auto& edge : node.edges) {
            weights.push_back(edge.isZeroStub() ? Complex{0.0, 0.0} : edge.weight);
        }
        const auto steps = cascadeFor(weights);
        for (const auto& step : steps) {
            Operation op =
                (step.kind == CascadeStep::Kind::Phase)
                    ? Operation::phase(node.site, step.levelA, step.levelB, step.theta,
                                       pathControls)
                    : Operation::givens(node.site, step.levelA, step.levelB, step.theta,
                                        step.phi, pathControls);
            if (!options_.emitIdentityOperations && op.isIdentity(options_.tolerance)) {
                continue;
            }
            circuit_.append(std::move(op));
        }

        // 2. Recurse into children. For a tensor-product node (all nonzero
        //    edges share one child) the child is prepared once, without this
        //    node's control — the §4.3 control-elision rule.
        if (options_.elideTensorProductControls && dd_.isTensorProductNode(ref)) {
            for (const auto& edge : node.edges) {
                if (!edge.isZeroStub()) {
                    visit(edge.node, pathControls);
                    break;
                }
            }
            return;
        }
        for (std::size_t k = 0; k < node.edges.size(); ++k) {
            const auto& edge = node.edges[k];
            if (edge.isZeroStub() || dd_.node(edge.node).isTerminal()) {
                continue;
            }
            pathControls.push_back(Control{node.site, static_cast<Level>(k)});
            visit(edge.node, pathControls);
            pathControls.pop_back();
        }
    }

private:
    const DecisionDiagram& dd_;
    const SynthesisOptions& options_;
    Circuit& circuit_;
};

} // namespace

Circuit synthesize(const DecisionDiagram& dd, const SynthesisOptions& options) {
    Circuit circuit(dd.dimensions(), options.circuitName);
    if (dd.rootNode() == kNoNode) {
        return circuit; // the zero diagram prepares |0...0| trivially
    }
    SynthesisTraversal traversal(dd, options, circuit);
    std::vector<Control> pathControls;
    traversal.visit(dd.rootNode(), pathControls);
    return circuit;
}

PreparationResult prepareExact(const StateVector& state, const SynthesisOptions& options) {
    return prepareExact(DecisionDiagram::fromStateVector(state, options.tolerance),
                        options);
}

PreparationResult prepareExact(DecisionDiagram diagram, const SynthesisOptions& options) {
    PreparationResult result;
    result.diagram = std::move(diagram);
    result.circuit = synthesize(result.diagram, options);
    return result;
}

PreparationResult prepareApproximated(const StateVector& state, double fidelityThreshold,
                                      const SynthesisOptions& options) {
    return prepareApproximated(DecisionDiagram::fromStateVector(state, options.tolerance),
                               fidelityThreshold, options);
}

PreparationResult prepareApproximated(DecisionDiagram diagram, double fidelityThreshold,
                                      const SynthesisOptions& options) {
    PreparationResult result;
    result.diagram = std::move(diagram);
    ApproximationOptions approxOptions;
    approxOptions.fidelityThreshold = fidelityThreshold;
    approxOptions.tolerance = options.tolerance;
    result.approx = approximate(result.diagram, approxOptions);
    result.circuit = synthesize(result.diagram, options);
    return result;
}

} // namespace mqsp
