#pragma once

#include "mqsp/approx/approximation.hpp"
#include "mqsp/circuit/circuit.hpp"
#include "mqsp/dd/decision_diagram.hpp"
#include "mqsp/statevec/state_vector.hpp"
#include "mqsp/synth/rotation_cascade.hpp"

#include <string>

namespace mqsp {

/// Options of the decision-diagram-to-circuit synthesis (§4.2).
struct SynthesisOptions {
    /// Emit every cascade step, including identity rotations and zero
    /// phases. This reproduces the paper's operation counting exactly
    /// (each nonzero node contributes dim-many multi-controlled ops).
    /// Disable to get shorter circuits with identical semantics.
    bool emitIdentityOperations = true;

    /// When every nonzero out-edge of a node points to one shared child
    /// (the tensor-product pattern exposed by reduction, §4.3), descend once
    /// and skip that node's control on the child's operations.
    bool elideTensorProductControls = true;

    /// Numerical tolerance for identity detection.
    double tolerance = Tolerance::kDefault;

    /// Name given to the produced circuit.
    std::string circuitName = "state_preparation";
};

/// Synthesize a mixed-dimensional state-preparation circuit from a decision
/// diagram. The produced circuit, applied to |0...0>, prepares the state the
/// diagram represents (up to an irrelevant global phase; in practice the
/// construction keeps the root weight at 1, so the state is exact).
///
/// Complexity: linear in the number of diagram nodes (each node is visited
/// once per root-to-node context and contributes at most dim operations) —
/// the paper's §3.3 efficiency claim.
[[nodiscard]] Circuit synthesize(const DecisionDiagram& dd, const SynthesisOptions& options = {});

/// Result bundle of the end-to-end pipelines below.
struct PreparationResult {
    Circuit circuit;
    DecisionDiagram diagram;        ///< the diagram the circuit was built from
    ApproximationReport approx;     ///< meaningful for the approximated pipeline
};

/// The paper's "Exact" pipeline: state -> weighted tree -> circuit.
[[nodiscard]] PreparationResult prepareExact(const StateVector& state,
                                             const SynthesisOptions& options = {});

/// Exact pipeline from an already-built diagram (e.g. a DD-native
/// structured-state builder on a register past the dense ceiling).
[[nodiscard]] PreparationResult prepareExact(DecisionDiagram diagram,
                                             const SynthesisOptions& options = {});

/// The paper's "Approximated" pipeline: state -> weighted tree -> prune to
/// the fidelity threshold -> reduce -> circuit.
[[nodiscard]] PreparationResult prepareApproximated(const StateVector& state,
                                                    double fidelityThreshold = 0.98,
                                                    const SynthesisOptions& options = {});

/// Approximated pipeline from an already-built (tree-shaped) diagram.
[[nodiscard]] PreparationResult prepareApproximated(DecisionDiagram diagram,
                                                    double fidelityThreshold = 0.98,
                                                    const SynthesisOptions& options = {});

} // namespace mqsp
