#pragma once

#include "mqsp/circuit/gate.hpp"
#include "mqsp/complexnum/complex.hpp"

#include <vector>

namespace mqsp {

/// One element of a single-qudit rotation cascade.
struct CascadeStep {
    enum class Kind { Phase, Rotation };
    Kind kind = Kind::Rotation;
    Level levelA = 0;
    Level levelB = 1;
    double theta = 0.0; ///< rotation angle; for Phase, the Z angle
    double phi = 0.0;   ///< rotation phase (unused for Phase)
};

/// Compute the two-level rotation cascade that maps the basis state |0> of a
/// d-level qudit to the normalized amplitude vector `weights` (§4.2).
///
/// The result is one two-level phase rotation Z_{0,1} (fixing the phase of
/// level 0 against the parent weight — applied first, where only level 0 is
/// populated, so it is exactly a relative-phase correction) followed by
/// d-1 Givens rotations on adjacent level pairs R_{0,1}, R_{1,2}, ...,
/// R_{d-2,d-1} with
///     theta_k = 2 atan2(r_{k+1}, |w_k|),   r_k = ||(w_k, ..., w_{d-1})||,
///     phi_k   = arg(w_{k+1}) - arg(t_k) + pi/2,
/// where t_k is the amplitude still traveling down the cascade. The angle
/// parameters match the paper's formulas up to the sign convention of the
/// rotation generator; correctness is defined by
///     apply(cascade, e_0) == weights   (verified by tests and the simulator).
///
/// All d steps (1 phase + d-1 rotations) are always returned, including
/// identity steps — the paper's operation counting emits them all; callers
/// that want shorter circuits filter with CascadeStep-level elision or
/// Circuit::removeIdentityOperations.
[[nodiscard]] std::vector<CascadeStep> cascadeFor(const std::vector<Complex>& weights);

/// Apply a cascade to a local amplitude vector (for tests and verification).
[[nodiscard]] std::vector<Complex> applyCascade(const std::vector<CascadeStep>& steps,
                                                std::vector<Complex> local);

} // namespace mqsp
