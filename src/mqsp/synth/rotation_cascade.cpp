#include "mqsp/synth/rotation_cascade.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>
#include <numbers>

namespace mqsp {

namespace {
constexpr double kPi = std::numbers::pi;

double argOrZero(const Complex& value) {
    if (value == Complex{0.0, 0.0}) {
        return 0.0;
    }
    return std::arg(value);
}
} // namespace

std::vector<CascadeStep> cascadeFor(const std::vector<Complex>& weights) {
    const std::size_t dim = weights.size();
    requireThat(dim >= 2, "cascadeFor: a qudit has at least two levels");

    // Tail norms r_k = ||(w_k, ..., w_{d-1})||, computed backward for
    // numerical stability.
    std::vector<double> tail(dim + 1, 0.0);
    for (std::size_t k = dim; k-- > 0;) {
        tail[k] = tail[k + 1] + squaredMagnitude(weights[k]);
    }
    for (auto& value : tail) {
        value = std::sqrt(value);
    }

    std::vector<CascadeStep> steps;
    steps.reserve(dim);

    // Phase correction first: with only level 0 populated, Z_{0,1}(theta)
    // multiplies the amplitude by e^{+i theta / 2}; choosing
    // theta = 2 arg(w_0) realizes the phase of w_0 exactly.
    const double delta = argOrZero(weights[0]);
    steps.push_back({CascadeStep::Kind::Phase, 0, 1, 2.0 * delta, 0.0});

    // The amplitude t_k traveling down the cascade: |t_k| = r_k by
    // construction; its phase starts at delta and is steered by each phi.
    double travelingArg = delta;
    for (std::size_t k = 0; k + 1 < dim; ++k) {
        const double theta = 2.0 * std::atan2(tail[k + 1], std::abs(weights[k]));
        const double targetArg = argOrZero(weights[k + 1]);
        const double phi = targetArg - travelingArg + kPi / 2.0;
        steps.push_back({CascadeStep::Kind::Rotation, static_cast<Level>(k),
                         static_cast<Level>(k + 1), theta, phi});
        travelingArg = targetArg;
    }
    return steps;
}

std::vector<Complex> applyCascade(const std::vector<CascadeStep>& steps,
                                  std::vector<Complex> local) {
    const auto dim = static_cast<Dimension>(local.size());
    for (const auto& step : steps) {
        const DenseMatrix m =
            (step.kind == CascadeStep::Kind::Phase)
                ? phaseMatrix(dim, step.levelA, step.levelB, step.theta)
                : givensMatrix(dim, step.levelA, step.levelB, step.theta, step.phi);
        local = m.apply(local);
    }
    return local;
}

} // namespace mqsp
