#include "mqsp/states/states.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

namespace mqsp::states {

namespace {

StateVector zeroState(const Dimensions& dims) {
    StateVector state(dims);
    state[0] = Complex{0.0, 0.0};
    return state;
}

} // namespace

StateVector ghz(const Dimensions& dims) {
    const MixedRadix radix(dims);
    const Dimension levels = *std::min_element(dims.begin(), dims.end());
    StateVector state = zeroState(dims);
    const double amp = 1.0 / std::sqrt(static_cast<double>(levels));
    for (Level k = 0; k < levels; ++k) {
        const Digits digits(dims.size(), k);
        state.at(digits) = Complex{amp, 0.0};
    }
    return state;
}

StateVector wState(const Dimensions& dims) {
    std::uint64_t terms = 0;
    for (const auto dim : dims) {
        terms += dim - 1;
    }
    StateVector state = zeroState(dims);
    const double amp = 1.0 / std::sqrt(static_cast<double>(terms));
    for (std::size_t site = 0; site < dims.size(); ++site) {
        for (Level level = 1; level < dims[site]; ++level) {
            Digits digits(dims.size(), 0);
            digits[site] = level;
            state.at(digits) = Complex{amp, 0.0};
        }
    }
    return state;
}

StateVector embeddedWState(const Dimensions& dims) {
    StateVector state = zeroState(dims);
    const double amp = 1.0 / std::sqrt(static_cast<double>(dims.size()));
    for (std::size_t site = 0; site < dims.size(); ++site) {
        Digits digits(dims.size(), 0);
        digits[site] = 1;
        state.at(digits) = Complex{amp, 0.0};
    }
    return state;
}

StateVector random(const Dimensions& dims, Rng& rng, RandomKind kind) {
    StateVector state = zeroState(dims);
    for (std::uint64_t i = 0; i < state.size(); ++i) {
        switch (kind) {
        case RandomKind::ComplexUniform:
            state[i] = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
            break;
        case RandomKind::RealUniform:
            state[i] = Complex{rng.uniform01(), 0.0};
            break;
        case RandomKind::PhaseOnly: {
            const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
            state[i] = Complex{std::cos(angle), std::sin(angle)};
            break;
        }
        }
    }
    state.normalize();
    return state;
}

StateVector randomSparse(const Dimensions& dims, std::uint64_t numNonZero, Rng& rng,
                         RandomKind kind) {
    StateVector state = zeroState(dims);
    requireThat(numNonZero >= 1, "randomSparse: need at least one nonzero amplitude");
    requireThat(numNonZero <= state.size(),
                "randomSparse: more nonzeros requested than the register holds");
    std::unordered_set<std::uint64_t> chosen;
    while (chosen.size() < numNonZero) {
        chosen.insert(rng.uniformIndex(state.size()));
    }
    for (const auto index : chosen) {
        switch (kind) {
        case RandomKind::ComplexUniform:
            state[index] = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
            break;
        case RandomKind::RealUniform:
            state[index] = Complex{rng.uniform01(), 0.0};
            break;
        case RandomKind::PhaseOnly: {
            const double angle = rng.uniform(0.0, 2.0 * std::numbers::pi);
            state[index] = Complex{std::cos(angle), std::sin(angle)};
            break;
        }
        }
    }
    if (state.norm() == 0.0) {
        state[*chosen.begin()] = Complex{1.0, 0.0};
    }
    state.normalize();
    return state;
}

StateVector uniform(const Dimensions& dims) {
    StateVector state = zeroState(dims);
    const double amp = 1.0 / std::sqrt(static_cast<double>(state.size()));
    for (std::uint64_t i = 0; i < state.size(); ++i) {
        state[i] = Complex{amp, 0.0};
    }
    return state;
}

StateVector basis(const Dimensions& dims, const Digits& digits) {
    return StateVector::basis(dims, digits);
}

StateVector cyclic(const Dimensions& dims, const Digits& start, std::uint32_t count) {
    const MixedRadix radix(dims);
    requireThat(start.size() == dims.size(), "cyclic: start word size mismatch");
    requireThat(count >= 1, "cyclic: need at least one shift");
    StateVector state = zeroState(dims);
    // Distinct shifted words can collide (when count exceeds the lcm of the
    // dimensions); collect them first so the amplitude stays uniform.
    std::unordered_set<std::uint64_t> words;
    for (std::uint32_t k = 0; k < count; ++k) {
        Digits digits(start.size());
        for (std::size_t site = 0; site < start.size(); ++site) {
            digits[site] = (start[site] + k) % dims[site];
        }
        words.insert(radix.indexOf(digits));
    }
    const double amp = 1.0 / std::sqrt(static_cast<double>(words.size()));
    for (const auto index : words) {
        state[index] = Complex{amp, 0.0};
    }
    return state;
}

StateVector dicke(const Dimensions& dims, std::uint64_t weight) {
    const MixedRadix radix(dims);
    StateVector state = zeroState(dims);
    std::uint64_t terms = 0;
    Digits digits(dims.size(), 0);
    do {
        std::uint64_t sum = 0;
        for (const auto digit : digits) {
            sum += digit;
        }
        if (sum == weight) {
            state.at(digits) = Complex{1.0, 0.0};
            ++terms;
        }
    } while (radix.increment(digits));
    requireThat(terms > 0, "dicke: no basis state has the requested weight");
    state.normalize();
    return state;
}

} // namespace mqsp::states
