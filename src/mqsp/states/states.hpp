#pragma once

#include "mqsp/statevec/state_vector.hpp"
#include "mqsp/support/rng.hpp"

#include <cstdint>

namespace mqsp {
/// Generators for the benchmark families of the paper's evaluation (§5) plus
/// a few additional classes of structured states useful for tests and
/// ablations. All states are returned normalized.
namespace states {

/// Mixed-dimensional GHZ state (§5, [33]):
///   1/sqrt(m) * sum_{k=0}^{m-1} |k k ... k>,   m = min(dims).
/// On uniform qubit registers this is the textbook GHZ state.
[[nodiscard]] StateVector ghz(const Dimensions& dims);

/// Mixed-dimensional W state (§5, [34]): the equal superposition of every
/// basis state in which exactly one qudit sits in some nonzero level (any
/// level 1..d_i-1) and all others are |0>. The number of terms is
/// sum_i (d_i - 1).
[[nodiscard]] StateVector wState(const Dimensions& dims);

/// Embedded W state (§5, [27]): the qubit W state embedded into the qudit
/// register — exactly one qudit in level |1>, all others |0>; n terms.
[[nodiscard]] StateVector embeddedWState(const Dimensions& dims);

/// How random amplitudes are drawn.
enum class RandomKind {
    /// Re and Im uniform on [-1, 1) (the paper's "amplitudes generated from
    /// a uniform distribution"), then globally normalized.
    ComplexUniform,
    /// Real amplitudes uniform on [0, 1), then normalized.
    RealUniform,
    /// Unit-magnitude amplitudes with uniform random phases.
    PhaseOnly,
};

/// Dense random state on the register.
[[nodiscard]] StateVector random(const Dimensions& dims, Rng& rng,
                                 RandomKind kind = RandomKind::ComplexUniform);

/// Random state with exactly `numNonZero` nonzero amplitudes at random
/// positions (useful for approximation ablations).
[[nodiscard]] StateVector randomSparse(const Dimensions& dims, std::uint64_t numNonZero,
                                       Rng& rng,
                                       RandomKind kind = RandomKind::ComplexUniform);

/// The uniform superposition over all basis states.
[[nodiscard]] StateVector uniform(const Dimensions& dims);

/// A single basis state |digits>.
[[nodiscard]] StateVector basis(const Dimensions& dims, const Digits& digits);

/// Cyclic state (cf. Mozafari et al., ASP-DAC 2022 [24], generalized to
/// mixed dimensions): the equal superposition of the `count` cyclic shifts
/// of the word `start`, where shift k adds k to every digit modulo the
/// digit's own dimension.
[[nodiscard]] StateVector cyclic(const Dimensions& dims, const Digits& start,
                                 std::uint32_t count);

/// Generalized Dicke-like state: equal superposition of all basis states
/// whose digits sum to `weight`. (Dicke states are the symmetric fixed-
/// excitation states; on mixed dimensions the digit sum plays the role of
/// the total excitation number.) Throws if no basis state has that weight.
[[nodiscard]] StateVector dicke(const Dimensions& dims, std::uint64_t weight);

} // namespace states
} // namespace mqsp
