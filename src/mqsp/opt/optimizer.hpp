#pragma once

#include "mqsp/circuit/circuit.hpp"

#include <cstddef>

namespace mqsp {

/// Which peephole passes runOptimizer applies.
struct OptimizerOptions {
    /// Merge neighbouring rotations with the same kind, target, levels,
    /// phi and controls (same-axis rotations compose by adding angles).
    /// Two ops also merge when separated only by ops that act on disjoint
    /// sites (they commute past each other).
    bool mergeRotations = true;

    /// Remove ops whose local action is the identity within `tolerance`
    /// (theta == 0 rotations, zero phases, zero shifts; also the residue of
    /// merges that cancel exactly).
    bool dropIdentities = true;

    /// Reverse multiplexing: when ops that differ only in the *level* of
    /// one shared control together cover every level of that control qudit
    /// (same kind/target/levels/angles), replace them with one uncontrolled
    /// copy. This is the circuit-level counterpart of the decision-diagram
    /// tensor rule (§4.3) and removes entangling work.
    bool mergeFullControlFans = true;

    /// Numerical tolerance for angle comparisons and identity detection.
    double tolerance = 1e-12;

    /// Re-run the pass pipeline until no pass changes the circuit (bounded
    /// by maxRounds).
    std::size_t maxRounds = 8;
};

/// Statistics of one optimizer run.
struct OptimizerReport {
    std::size_t opsBefore = 0;
    std::size_t opsAfter = 0;
    std::size_t mergedRotations = 0;
    std::size_t droppedIdentities = 0;
    std::size_t mergedControlFans = 0;
    std::size_t rounds = 0;
};

/// Optimize a circuit with semantics-preserving peephole passes. The
/// returned circuit implements exactly the same unitary (verified by the
/// randomized equivalence tests in tests/opt).
OptimizerReport optimizeCircuit(Circuit& circuit, const OptimizerOptions& options = {});

} // namespace mqsp
