#include "mqsp/opt/optimizer.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <vector>

namespace mqsp {

namespace {

/// All sites an operation touches (target + controls).
std::vector<std::size_t> sitesOf(const Operation& op) {
    std::vector<std::size_t> sites{op.target};
    for (const auto& ctrl : op.controls) {
        sites.push_back(ctrl.qudit);
    }
    std::sort(sites.begin(), sites.end());
    return sites;
}

bool disjointSites(const Operation& a, const Operation& b) {
    const auto sa = sitesOf(a);
    const auto sb = sitesOf(b);
    std::vector<std::size_t> common;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(common));
    return common.empty();
}

/// Same rotation axis: merging candidates must agree in everything except
/// the angle. Controls are compared as sorted sets (their order is not
/// semantic).
bool sameAxis(const Operation& a, const Operation& b, double tol) {
    if (a.kind != b.kind || a.target != b.target) {
        return false;
    }
    if (a.kind != GateKind::GivensRotation && a.kind != GateKind::PhaseRotation) {
        return false;
    }
    if (a.levelA != b.levelA || a.levelB != b.levelB) {
        return false;
    }
    if (a.kind == GateKind::GivensRotation && std::abs(a.phi - b.phi) > tol) {
        return false;
    }
    return a.controls == b.controls;
}

/// Identical payload (kind, target, levels, angles, shift) — everything but
/// the controls.
bool samePayload(const Operation& a, const Operation& b, double tol) {
    if (a.kind != b.kind || a.target != b.target) {
        return false;
    }
    switch (a.kind) {
    case GateKind::GivensRotation:
        return a.levelA == b.levelA && a.levelB == b.levelB &&
               std::abs(a.theta - b.theta) <= tol && std::abs(a.phi - b.phi) <= tol;
    case GateKind::PhaseRotation:
        return a.levelA == b.levelA && a.levelB == b.levelB &&
               std::abs(a.theta - b.theta) <= tol;
    case GateKind::Hadamard:
        return true;
    case GateKind::Shift:
        return a.shiftAmount == b.shiftAmount;
    case GateKind::LevelSwap:
        return a.levelA == b.levelA && a.levelB == b.levelB;
    }
    detail::throwInternal("samePayload: unknown gate kind");
}

/// One pass of neighbouring-rotation merging over the op list. Returns the
/// number of merges performed.
std::size_t mergeRotationsPass(std::vector<Operation>& ops, double tol) {
    std::size_t merges = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        Operation& current = ops[i];
        if (current.kind != GateKind::GivensRotation &&
            current.kind != GateKind::PhaseRotation) {
            continue;
        }
        for (std::size_t j = i + 1; j < ops.size();) {
            if (sameAxis(current, ops[j], tol)) {
                current.theta += ops[j].theta;
                ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
                ++merges;
                continue; // the window keeps extending past the merged slot
            }
            if (!disjointSites(current, ops[j])) {
                break;
            }
            ++j;
        }
    }
    return merges;
}

std::size_t dropIdentitiesPass(std::vector<Operation>& ops, double tol) {
    const std::size_t before = ops.size();
    std::erase_if(ops, [tol](const Operation& op) { return op.isIdentity(tol); });
    return before - ops.size();
}

/// Reverse multiplexing: ops identical up to the level of one shared control
/// and jointly covering all of that control's levels collapse into one
/// uncontrolled (on that qudit) op.
std::size_t mergeControlFansPass(std::vector<Operation>& ops, const MixedRadix& radix,
                                 double tol) {
    std::size_t merges = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Operation& seed = ops[i];
        if (seed.controls.empty()) {
            continue;
        }
        for (std::size_t ctrlIndex = 0; ctrlIndex < seed.controls.size(); ++ctrlIndex) {
            const std::size_t fanQudit = seed.controls[ctrlIndex].qudit;
            const Dimension fanDim = radix.dimensionAt(fanQudit);

            // A candidate matches seed in payload and in all other controls.
            const auto isCandidate = [&](const Operation& other,
                                         Level& levelOut) -> bool {
                if (!samePayload(seed, other, tol) ||
                    other.controls.size() != seed.controls.size()) {
                    return false;
                }
                std::optional<Level> level;
                for (std::size_t c = 0; c < seed.controls.size(); ++c) {
                    if (c == ctrlIndex) {
                        if (other.controls[c].qudit != fanQudit) {
                            return false;
                        }
                        level = other.controls[c].level;
                    } else if (other.controls[c] != seed.controls[c]) {
                        return false;
                    }
                }
                levelOut = level.value();
                return true;
            };

            std::set<Level> covered{seed.controls[ctrlIndex].level};
            std::vector<std::size_t> partners;
            for (std::size_t j = i + 1; j < ops.size(); ++j) {
                Level level = 0;
                if (isCandidate(ops[j], level)) {
                    if (covered.insert(level).second) {
                        partners.push_back(j);
                        if (covered.size() == fanDim) {
                            break;
                        }
                    }
                    continue; // duplicate level: leave it for a later round
                }
                if (!disjointSites(seed, ops[j])) {
                    break;
                }
            }
            if (covered.size() != fanDim) {
                continue;
            }
            // Collapse: remove the fan control from the seed, delete partners.
            ops[i].controls.erase(ops[i].controls.begin() +
                                  static_cast<std::ptrdiff_t>(ctrlIndex));
            for (std::size_t k = partners.size(); k-- > 0;) {
                ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(partners[k]));
            }
            merges += partners.size();
            break; // seed changed; restart its control scan on a later round
        }
    }
    return merges;
}

} // namespace

OptimizerReport optimizeCircuit(Circuit& circuit, const OptimizerOptions& options) {
    OptimizerReport report;
    report.opsBefore = circuit.numOperations();

    std::vector<Operation> ops(circuit.operations().begin(), circuit.operations().end());
    // Control order is not semantic; canonicalize so comparisons work.
    for (auto& op : ops) {
        std::sort(op.controls.begin(), op.controls.end());
    }

    const MixedRadix& radix = circuit.radix();
    for (report.rounds = 0; report.rounds < options.maxRounds; ++report.rounds) {
        std::size_t changes = 0;
        if (options.mergeRotations) {
            const std::size_t merged = mergeRotationsPass(ops, options.tolerance);
            report.mergedRotations += merged;
            changes += merged;
        }
        if (options.mergeFullControlFans) {
            const std::size_t merged = mergeControlFansPass(ops, radix, options.tolerance);
            report.mergedControlFans += merged;
            changes += merged;
        }
        if (options.dropIdentities) {
            const std::size_t dropped = dropIdentitiesPass(ops, options.tolerance);
            report.droppedIdentities += dropped;
            changes += dropped;
        }
        if (changes == 0) {
            break;
        }
    }

    Circuit optimized(circuit.dimensions(), circuit.name());
    for (auto& op : ops) {
        optimized.append(std::move(op));
    }
    circuit = std::move(optimized);
    report.opsAfter = circuit.numOperations();
    return report;
}

} // namespace mqsp
