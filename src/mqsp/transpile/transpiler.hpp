#pragma once

#include "mqsp/circuit/circuit.hpp"

#include <cstddef>

namespace mqsp {

/// Result of lowering a multi-controlled circuit to one- and two-qudit
/// operations.
struct TranspileResult {
    /// The lowered circuit. Its register is the input register extended by
    /// `numAncillas` qubit (dimension-2) ancillas appended at the least
    /// significant end; every operation carries at most one control. Applied
    /// to |0...0>, it acts like the input circuit on the original qudits and
    /// returns every ancilla to |0>.
    Circuit circuit;

    /// Number of ancilla qubits appended.
    std::size_t numAncillas = 0;
};

/// Lower every multi-controlled operation to {0,1}-control two-level
/// operations (§3.3 / the paper's references [35], [36]: multi-controlled
/// qudit gates transpile to local and two-qudit operations with linear
/// overhead).
///
/// Scheme: a k-controlled rotation is lowered by AND-accumulating the k
/// control conditions into a chain of k-1 ancilla qubits (each AND is a
/// doubly-controlled two-level flip, lowered by the level-control-safe
/// block construction below), applying the payload rotation controlled on
/// the final ancilla, and uncomputing the chain. Cost per k-controlled op is
/// O(k * d) two-qudit operations, linear in k as in [36].
///
/// The doubly-controlled base case C_{a=alpha, b=beta}(R(theta)) uses a
/// generalization of the Barenco V-chain to multi-valued controls: with
/// d = dim(b) and half-angle h = theta / d, for every level q != beta of b a
/// block
///     C_{b=beta}(R(+h)) ; C_{a=alpha}(swap_b(beta,q)) ;
///     C_{b=beta}(R(-h)) ; C_{a=alpha}(swap_b(beta,q) dagger) ;
///     C_{a=alpha}(R(+h))
/// is emitted, followed by one corrective C_{a=alpha}(R(-h*(d-2))). Summing
/// the fired rotation angles per (a, b) branch yields theta exactly when
/// a = alpha and b = beta and zero otherwise (all rotations share one axis,
/// so angles add; see tests/transpile for the exhaustive branch check).
///
/// Throws InvalidArgumentError if the input contains Hadamard or Shift ops
/// with two or more controls (the synthesizer never emits those).
[[nodiscard]] TranspileResult transpileToTwoQudit(const Circuit& input);

/// Count the two-qudit operations the lowering would emit, without building
/// the circuit (fast resource estimation for benches).
[[nodiscard]] std::size_t estimateTwoQuditCost(const Circuit& input);

} // namespace mqsp
