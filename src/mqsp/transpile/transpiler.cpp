#include "mqsp/transpile/transpiler.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mqsp {

namespace {

constexpr double kPi = std::numbers::pi;

/// Emit `op` with its rotation angle replaced by `angle` and its control
/// list replaced by `controls` (same axis: kind, levels and phi preserved).
Operation withAngleAndControls(const Operation& payload, double angle,
                               std::vector<Control> controls) {
    Operation op = payload;
    op.theta = angle;
    op.controls = std::move(controls);
    return op;
}

/// Lowers one circuit; holds the output and the ancilla bookkeeping.
class Lowering {
public:
    Lowering(const Circuit& input, Circuit& output) : input_(input), output_(output) {}

    void run() {
        for (const auto& op : input_.operations()) {
            lower(op);
        }
    }

private:
    void lower(const Operation& op) {
        if (op.numControls() <= 1) {
            output_.append(op);
            return;
        }
        requireThat(op.kind == GateKind::GivensRotation || op.kind == GateKind::PhaseRotation,
                    "transpileToTwoQudit: only rotation-family ops may carry multiple "
                    "controls");
        if (op.numControls() == 2) {
            emitDoublyControlled(op, op.controls[0], op.controls[1]);
            return;
        }
        // k >= 3: AND-accumulate controls into ancilla qubits, then apply the
        // payload singly controlled, then uncompute in reverse.
        const auto& controls = op.controls;
        std::size_t ancilla = ancillaSite(0);
        const std::size_t emittedBegin = output_.numOperations();
        emitAnd(controls[0], controls[1], ancilla);
        for (std::size_t m = 2; m + 1 < controls.size(); ++m) {
            const std::size_t next = ancillaSite(m - 1);
            emitAnd(Control{ancilla, 1}, controls[m], next);
            ancilla = next;
        }
        // The last control conditions the payload directly together with the
        // final ancilla — that is again a doubly-controlled rotation.
        const std::size_t computeEnd = output_.numOperations();
        Operation payload = op;
        payload.controls.clear();
        emitDoublyControlled(payload, Control{ancilla, 1}, controls.back());
        // Uncompute: exact inverses of the compute ops, reversed.
        for (std::size_t i = computeEnd; i-- > emittedBegin;) {
            output_.append(output_[i].inverse());
        }
    }

    /// AND of two level-controls into ancilla qubit `target` (|0> -> flip to
    /// |1>-up-to-phase iff both controls hold): a doubly-controlled two-level
    /// rotation by pi on the ancilla.
    void emitAnd(const Control& a, const Control& b, std::size_t target) {
        const Operation flip = Operation::givens(target, 0, 1, kPi, 0.0);
        emitDoublyControlled(flip, a, b);
    }

    /// The level-control-safe Barenco block (see transpiler.hpp): lowers
    /// C_{a,b}(payload) where payload carries no controls of its own.
    void emitDoublyControlled(const Operation& payload, const Control& a, const Control& b) {
        const Dimension dimB = output_.radix().dimensionAt(b.qudit);
        const double theta = payload.theta;
        const double h = theta / static_cast<double>(dimB);
        for (Level q = 0; q < dimB; ++q) {
            if (q == b.level) {
                continue;
            }
            // F1: C_{b=beta}(R(+h))
            output_.append(withAngleAndControls(payload, h, {b}));
            // T: C_{a}(swap_b(beta, q)) realized as a pi-Givens
            output_.append(
                Operation::givens(b.qudit, b.level, q, kPi, 0.0, {a}));
            // F2: C_{b=beta}(R(-h))
            output_.append(withAngleAndControls(payload, -h, {b}));
            // T dagger
            output_.append(
                Operation::givens(b.qudit, b.level, q, -kPi, 0.0, {a}));
            // F3: C_{a}(R(+h))
            output_.append(withAngleAndControls(payload, h, {a}));
        }
        // Corrective rotation cancelling the stray h(d-2) on branches where
        // a holds but b sits on a third level.
        if (dimB > 2) {
            output_.append(withAngleAndControls(
                payload, -h * static_cast<double>(dimB - 2), {a}));
        }
    }

    [[nodiscard]] std::size_t ancillaSite(std::size_t index) const {
        return input_.numQudits() + index;
    }

    const Circuit& input_;
    Circuit& output_;
};

std::size_t maxControlCount(const Circuit& input) {
    std::size_t maxK = 0;
    for (const auto& op : input.operations()) {
        maxK = std::max(maxK, op.numControls());
    }
    return maxK;
}

/// Ops emitted by one doubly-controlled lowering with 'b' of dimension dimB.
std::size_t blockCost(Dimension dimB) {
    return 5U * (dimB - 1U) + (dimB > 2 ? 1U : 0U);
}

} // namespace

TranspileResult transpileToTwoQudit(const Circuit& input) {
    TranspileResult result;
    const std::size_t maxK = maxControlCount(input);
    result.numAncillas = maxK >= 3 ? maxK - 2 : 0;

    Dimensions dims = input.dimensions();
    dims.insert(dims.end(), result.numAncillas, Dimension{2});
    result.circuit = Circuit(std::move(dims), input.name() + "_2q");

    Lowering lowering(input, result.circuit);
    lowering.run();
    return result;
}

std::size_t estimateTwoQuditCost(const Circuit& input) {
    std::size_t total = 0;
    const auto& radix = input.radix();
    for (const auto& op : input.operations()) {
        const std::size_t k = op.numControls();
        if (k <= 1) {
            total += 1;
            continue;
        }
        if (k == 2) {
            total += blockCost(radix.dimensionAt(op.controls[1].qudit));
            continue;
        }
        // Compute chain: AND(c0,c1), then AND(anc, c_m) for m in [2, k-2].
        std::size_t compute = blockCost(radix.dimensionAt(op.controls[1].qudit));
        for (std::size_t m = 2; m + 1 < k; ++m) {
            compute += blockCost(radix.dimensionAt(op.controls[m].qudit));
        }
        // Payload block on (final ancilla, last control), plus uncompute.
        total += 2 * compute + blockCost(radix.dimensionAt(op.controls.back().qudit));
    }
    return total;
}

} // namespace mqsp
