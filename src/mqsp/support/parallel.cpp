#include "mqsp/support/parallel.hpp"

#include "mqsp/support/error.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace mqsp::parallel {

namespace {

/// Set while the current thread is executing chunks of a parallel region;
/// nested parallelFor/parallelReduce calls observe it and run inline.
thread_local bool tlsInsideParallelRegion = false;

struct RegionGuard {
    RegionGuard() { tlsInsideParallelRegion = true; }
    ~RegionGuard() { tlsInsideParallelRegion = false; }
    RegionGuard(const RegionGuard&) = delete;
    RegionGuard& operator=(const RegionGuard&) = delete;
};

} // namespace

bool insideParallelRegion() noexcept { return tlsInsideParallelRegion; }

unsigned hardwareThreads() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1U : hw;
}

unsigned resolveThreadCount(unsigned requested) {
    if (requested > 0) {
        return requested;
    }
    if (const char* env = std::getenv("MQSP_THREADS")) {
        const std::string text(env);
        std::size_t consumed = 0;
        unsigned long parsed = 0;
        try {
            if (text.empty() || text.front() == '-') {
                throw std::invalid_argument(text);
            }
            parsed = std::stoul(text, &consumed);
        } catch (const std::exception&) {
            consumed = 0;
        }
        requireThat(!text.empty() && consumed == text.size(),
                    "MQSP_THREADS expects a non-negative integer, got '" + text + "'");
        if (parsed > 0) {
            return static_cast<unsigned>(parsed);
        }
        // MQSP_THREADS=0 means automatic, same as unset.
    }
    return hardwareThreads();
}

void runOnThreads(unsigned count, const std::function<void(unsigned)>& fn) {
    if (count == 0) {
        return;
    }
    std::mutex mutex;
    std::condition_variable gate;
    unsigned arrived = 0;
    std::exception_ptr firstError;
    std::vector<std::thread> threads;
    threads.reserve(count);
    for (unsigned index = 0; index < count; ++index) {
        threads.emplace_back([&, index] {
            {
                // Start barrier: maximize actual overlap of the bodies.
                std::unique_lock<std::mutex> lock(mutex);
                ++arrived;
                if (arrived == count) {
                    gate.notify_all();
                } else {
                    gate.wait(lock, [&] { return arrived == count; });
                }
            }
            try {
                fn(index);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(mutex);
                if (!firstError) {
                    firstError = std::current_exception();
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    if (firstError) {
        std::rethrow_exception(firstError);
    }
}

// --- TaskPool --------------------------------------------------------------

struct TaskPool::Impl {
    struct Job {
        std::uint64_t begin = 0;
        std::uint64_t grain = 1;
        std::uint64_t numChunks = 0;
        std::uint64_t rangeEnd = 0;
        detail::ChunkFnRef* chunk = nullptr;
        std::atomic<std::uint64_t> nextChunk{0};
        std::atomic<std::uint64_t> chunksDone{0};
        std::atomic<bool> aborted{false};
        std::exception_ptr error; ///< first chunk exception; guarded by errorMutex
        std::mutex errorMutex;
    };

    std::mutex mutex;             ///< guards job/generation/stopping
    std::condition_variable wake; ///< workers: a new job is available
    std::condition_variable done; ///< submitter: all chunks completed
    // shared_ptr, not a raw pointer: a worker that wakes late may still be
    // inside work() (claiming zero chunks) after every chunk has completed
    // and the submitter has moved on — its reference keeps the Job alive
    // past the submitter's frame.
    std::shared_ptr<Job> job;
    std::uint64_t generation = 0;
    bool stopping = false;
    std::mutex submitMutex; ///< one parallel region at a time
    std::vector<std::thread> workers;

    /// Claim and execute chunks of `active` until none remain.
    void work(Job& active) {
        RegionGuard inRegion;
        for (;;) {
            const std::uint64_t c = active.nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= active.numChunks) {
                return;
            }
            if (!active.aborted.load(std::memory_order_relaxed)) {
                const std::uint64_t chunkBegin = active.begin + c * active.grain;
                const std::uint64_t chunkEnd = chunkBegin + active.grain < active.rangeEnd
                                                   ? chunkBegin + active.grain
                                                   : active.rangeEnd;
                try {
                    (*active.chunk)(chunkBegin, chunkEnd);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(active.errorMutex);
                    if (!active.error) {
                        active.error = std::current_exception();
                    }
                    active.aborted.store(true, std::memory_order_relaxed);
                }
            }
            if (active.chunksDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                active.numChunks) {
                const std::lock_guard<std::mutex> lock(mutex);
                done.notify_all();
            }
        }
    }

    void workerLoop() {
        std::uint64_t lastGeneration = 0;
        for (;;) {
            std::shared_ptr<Job> active;
            {
                std::unique_lock<std::mutex> lock(mutex);
                wake.wait(lock, [&] {
                    return stopping || (job != nullptr && generation != lastGeneration);
                });
                if (stopping) {
                    return;
                }
                active = job;
                lastGeneration = generation;
            }
            work(*active);
        }
    }
};

TaskPool::TaskPool(unsigned threads) : impl_(new Impl), threads_(threads == 0 ? 1U : threads) {
    impl_->workers.reserve(threads_ - 1);
    for (unsigned i = 0; i + 1 < threads_; ++i) {
        impl_->workers.emplace_back([impl = impl_] { impl->workerLoop(); });
    }
}

TaskPool::~TaskPool() {
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stopping = true;
    }
    impl_->wake.notify_all();
    for (std::thread& worker : impl_->workers) {
        worker.join();
    }
    delete impl_;
}

void TaskPool::run(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                   detail::ChunkFnRef chunk) {
    if (begin >= end) {
        return;
    }
    if (grain == 0) {
        grain = 1;
    }
    const auto job = std::make_shared<Impl::Job>();
    job->begin = begin;
    job->grain = grain;
    job->numChunks = detail::chunkCount(begin, end, grain);
    job->rangeEnd = end;
    job->chunk = &chunk;

    const std::lock_guard<std::mutex> submission(impl_->submitMutex);
    {
        const std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->job = job;
        ++impl_->generation;
    }
    impl_->wake.notify_all();
    impl_->work(*job); // the submitting thread is worker number `threads_`
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done.wait(lock, [&] {
            return job->chunksDone.load(std::memory_order_acquire) == job->numChunks;
        });
        impl_->job.reset();
    }
    // All chunks have completed, so `chunk` (a reference into the caller's
    // frame) is no longer reachable: a straggling worker still holding the
    // shared Job can only observe an exhausted chunk counter.
    if (job->error) {
        std::rethrow_exception(job->error);
    }
}

// --- global configuration --------------------------------------------------

namespace {

std::mutex globalMutex;
// shared_ptr: a reconfiguration must not pull the pool out from under a
// thread that is mid-region. runOnPool holds its own reference for the
// duration of the submission; setGlobalThreads merely drops the global
// one, and the old pool is destroyed (joining its workers) when the last
// in-flight submitter releases it.
std::shared_ptr<TaskPool> globalPoolPtr;
unsigned globalThreadCount = 0; // 0 = not resolved yet

/// Resolve (if needed) and return the global count; caller holds globalMutex.
unsigned resolvedGlobalThreadsLocked() {
    if (globalThreadCount == 0) {
        globalThreadCount = resolveThreadCount(0);
    }
    return globalThreadCount;
}

} // namespace

unsigned globalThreads() {
    const std::lock_guard<std::mutex> lock(globalMutex);
    return resolvedGlobalThreadsLocked();
}

ExecutionConfig globalExecutionConfig() { return ExecutionConfig{globalThreads()}; }

void setGlobalThreads(unsigned threads) {
    ensureThat(!insideParallelRegion(),
               "setGlobalThreads: cannot reconfigure from inside a parallel region");
    const unsigned resolved = resolveThreadCount(threads);
    std::shared_ptr<TaskPool> retired;
    {
        const std::lock_guard<std::mutex> lock(globalMutex);
        if (resolved == globalThreadCount) {
            return;
        }
        retired = std::move(globalPoolPtr);
        globalThreadCount = resolved;
    }
    // `retired` (and with it the worker join) is released outside the lock;
    // a region in flight on another thread keeps the old pool alive through
    // its own reference and finishes undisturbed at the old width.
}

ScopedThreadCount::ScopedThreadCount(unsigned threads) {
    if (threads == 0 || insideParallelRegion()) {
        return;
    }
    previous_ = globalThreads();
    if (threads != previous_) {
        setGlobalThreads(threads);
        changed_ = true;
    }
}

ScopedThreadCount::~ScopedThreadCount() {
    if (changed_) {
        setGlobalThreads(previous_);
    }
}

namespace detail {

void runOnPool(std::uint64_t begin, std::uint64_t end, std::uint64_t grain, ChunkFnRef chunk) {
    std::shared_ptr<TaskPool> pool;
    {
        const std::lock_guard<std::mutex> lock(globalMutex);
        const unsigned threads = resolvedGlobalThreadsLocked();
        if (threads > 1 && !globalPoolPtr) {
            globalPoolPtr = std::make_shared<TaskPool>(threads);
        }
        pool = globalPoolPtr; // own reference: outlives any reconfiguration
    }
    if (pool == nullptr) {
        // The configuration dropped to 1 thread between the caller's check
        // and now; run inline.
        chunk(begin, end);
        return;
    }
    pool->run(begin, end, grain, chunk);
}

} // namespace detail

} // namespace mqsp::parallel
