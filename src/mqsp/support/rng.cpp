#include "mqsp/support/rng.hpp"

#include "mqsp/support/error.hpp"

namespace mqsp {

std::uint64_t Rng::uniformIndex(std::uint64_t bound) {
    requireThat(bound > 0, "Rng::uniformIndex: bound must be positive");
    std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
    return dist(engine_);
}

std::uint64_t Rng::childSeed() {
    // SplitMix64 finalizer over the next engine output decorrelates streams.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31U);
}

} // namespace mqsp
