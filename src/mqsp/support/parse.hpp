#pragma once

// Strict numeric parsing for untrusted text: CLI flag values, dimension
// specs, circuit files, and mqsp_serve protocol lines all route through
// these helpers instead of raw std::stoull/std::stod. The contract is
// whole-token or nothing — leading signs on unsigned fields, trailing
// junk, embedded whitespace, and empty tokens are all rejected instead of
// being wrapped, truncated, or surfaced as bare stdlib exceptions.

#include "mqsp/support/error.hpp"

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mqsp::parse {

/// Parse `text` as a base-10 non-negative integer consuming the whole
/// token. Returns nullopt on empty input, any sign character, trailing
/// junk, or overflow past 64 bits.
[[nodiscard]] inline std::optional<std::uint64_t> tryUint64(std::string_view text) noexcept {
    if (text.empty() || text.front() == '-' || text.front() == '+') {
        return std::nullopt;
    }
    std::uint64_t value = 0;
    const auto* first = text.data();
    const auto* last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value, 10);
    if (ec != std::errc{} || ptr != last) {
        return std::nullopt;
    }
    return value;
}

/// Parse `text` as a floating-point number consuming the whole token.
/// Accepts the usual fixed/scientific spellings (including a leading
/// sign); returns nullopt on empty input, trailing junk, or range errors.
[[nodiscard]] inline std::optional<double> tryDouble(std::string_view text) noexcept {
    if (text.empty()) {
        return std::nullopt;
    }
    double value = 0.0;
    const auto* first = text.data();
    const auto* last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) {
        return std::nullopt;
    }
    return value;
}

/// Truncate overlong untrusted text and mask control bytes before quoting
/// it in an error message: a pathological input must not balloon the
/// diagnostic, and an embedded newline or escape sequence must not break a
/// line-oriented reply (mqsp_serve answers exactly one line per command)
/// or garble a terminal.
[[nodiscard]] inline std::string clipForMessage(std::string_view text,
                                                std::size_t maxLength = 96) {
    std::string out(text.substr(0, maxLength));
    for (char& ch : out) {
        const auto byte = static_cast<unsigned char>(ch);
        if (byte < 0x20 || byte == 0x7F) {
            ch = '?';
        }
    }
    if (text.size() > maxLength) {
        out += "...";
    }
    return out;
}

/// Throwing wrapper around tryUint64: `context` names the field (flag,
/// spec entry, protocol option) for the error message.
[[nodiscard]] inline std::uint64_t uint64(std::string_view text, const std::string& context) {
    const auto value = tryUint64(text);
    requireThat(value.has_value(),
                context + " expects a non-negative integer, got '" + clipForMessage(text) + "'");
    return *value;
}

/// Throwing wrapper around tryDouble; `context` names the field.
[[nodiscard]] inline double real(std::string_view text, const std::string& context) {
    const auto value = tryDouble(text);
    requireThat(value.has_value(),
                context + " expects a number, got '" + clipForMessage(text) + "'");
    return *value;
}

} // namespace mqsp::parse
