#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mqsp {

/// Dimension of a single qudit (d >= 2). A qubit is dimension 2, a qutrit 3, ...
using Dimension = std::uint32_t;

/// A digit (level) of a single qudit, in [0, dimension).
using Level = std::uint32_t;

/// Ordered list of qudit dimensions. Index 0 is the *most significant* qudit
/// (the root level of a decision diagram); the last entry is the least
/// significant qudit, matching the paper's convention q_{n-1} ... q_0 where
/// q_{n-1} is "the most significant qudit".
using Dimensions = std::vector<Dimension>;

/// A mixed-radix digit string, one Level per qudit, most significant first.
using Digits = std::vector<Level>;

/// Mixed-radix indexing for a register of qudits with (possibly) different
/// dimensionalities.
///
/// The flat index of digit string (k_{n-1}, ..., k_0) is
///   sum_i k_i * stride_i,   with stride_i = product of dimensions of all
/// less-significant qudits. This is the layout used throughout the library:
/// state vectors, decision-diagram construction, and the simulator all agree
/// on it.
class MixedRadix {
public:
    MixedRadix() = default;

    /// Build an indexer for the given dimensions (most significant first).
    /// Throws InvalidArgumentError if any dimension is < 2 or the total
    /// dimension overflows 64 bits.
    explicit MixedRadix(Dimensions dimensions);

    /// Number of qudits in the register.
    [[nodiscard]] std::size_t numQudits() const noexcept { return dimensions_.size(); }

    /// Dimensions, most significant first.
    [[nodiscard]] const Dimensions& dimensions() const noexcept { return dimensions_; }

    /// Dimension of qudit at position `site` (0 = most significant).
    [[nodiscard]] Dimension dimensionAt(std::size_t site) const;

    /// Product of all dimensions == length of a full state vector.
    [[nodiscard]] std::uint64_t totalDimension() const noexcept { return total_; }

    /// Stride of qudit `site`: the flat-index step corresponding to
    /// incrementing that qudit's digit by one.
    [[nodiscard]] std::uint64_t strideAt(std::size_t site) const;

    /// Convert a digit string (most significant first) into a flat index.
    /// Throws InvalidArgumentError on size/level mismatch.
    [[nodiscard]] std::uint64_t indexOf(const Digits& digits) const;

    /// Convert a flat index into a digit string (most significant first).
    /// Throws InvalidArgumentError if index >= totalDimension().
    [[nodiscard]] Digits digitsOf(std::uint64_t index) const;

    /// Digit of qudit `site` within flat index `index`.
    [[nodiscard]] Level digitAt(std::uint64_t index, std::size_t site) const;

    /// Advance a digit string in-place to the next flat index. Returns false
    /// (and leaves all digits at 0) when the iteration wraps past the end.
    bool increment(Digits& digits) const;

    /// Render digits like "|2 1 0>" for diagnostics.
    [[nodiscard]] static std::string toKetString(const Digits& digits);

    /// True when all qudits share one dimension (e.g. a pure-qubit register).
    [[nodiscard]] bool isUniform() const noexcept;

    friend bool operator==(const MixedRadix&, const MixedRadix&) = default;

private:
    Dimensions dimensions_;
    std::vector<std::uint64_t> strides_;
    std::uint64_t total_ = 1;
};

/// Parse a compact dimension-spec string such as "3,6,2" or "[1x3,1x6,1x2]"
/// (the paper's Count x Dimension notation) into a Dimensions list,
/// most significant first. Whitespace and brackets are ignored; each comma
/// separated entry is either "d" or "cxd".
[[nodiscard]] Dimensions parseDimensionSpec(const std::string& spec);

/// Render dimensions in the paper's grouped notation, e.g. [3x4,1x7,1x3,1x5].
[[nodiscard]] std::string formatDimensionSpec(const Dimensions& dimensions);

} // namespace mqsp
