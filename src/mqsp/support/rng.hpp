#pragma once

#include <cstdint>
#include <random>

namespace mqsp {

/// Deterministic random number generator used across benchmarks and the
/// random-state generators. A thin wrapper over std::mt19937_64 so that the
/// seeding policy lives in one place and every experiment is reproducible.
class Rng {
public:
    /// Default seed chosen once for the whole library; experiments that need
    /// independent streams derive seeds via `child`.
    static constexpr std::uint64_t kDefaultSeed = 0x5eed'c0de'2024ULL;

    Rng() : engine_(kDefaultSeed) {}
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform double in [0, 1).
    double uniform01() { return unit_(engine_); }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return lo + (hi - lo) * uniform01();
    }

    /// Uniform integer in [0, bound).
    std::uint64_t uniformIndex(std::uint64_t bound);

    /// Standard normal variate.
    double gaussian() { return normal_(engine_); }

    /// Derive a decorrelated child seed (for per-run streams).
    [[nodiscard]] std::uint64_t childSeed();

    /// Access the raw engine for std distributions.
    std::mt19937_64& engine() noexcept { return engine_; }

private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
    std::normal_distribution<double> normal_{0.0, 1.0};
};

} // namespace mqsp
