#pragma once

namespace mqsp {

/// Library version string (semantic versioning).
[[nodiscard]] const char* versionString() noexcept;

} // namespace mqsp
