#pragma once

// The parallel execution layer: a reusable fixed-size thread pool plus the
// two loop shapes every dense hot path in the library is written on —
// `parallelFor` over an index range and a deterministic, ordered-chunk
// `parallelReduce`.
//
// Determinism contract: chunk boundaries depend only on the range and the
// grain size, never on the thread count, and reduction partials are
// combined in chunk order on the calling thread. A reduction therefore
// returns the *bit-identical* double at 1 thread and at N threads; a
// `parallelFor` body that writes disjoint indices produces bit-identical
// state at any thread count.
//
// Nested-use refusal: a body that (transitively) calls back into
// `parallelFor`/`parallelReduce` while running on the pool is executed
// inline on its worker instead of re-entering the pool — independent batch
// items can fan out across workers while each item's inner kernels stay
// serial, and no configuration can deadlock.
//
// The process-wide thread count is an `ExecutionConfig` resolved from
// `--threads N` (CLI), the `MQSP_THREADS` environment variable, or
// `std::thread::hardware_concurrency()` in that order; `threads == 1`
// bypasses the pool entirely and preserves the library's single-threaded
// behavior exactly.

#include <cstdint>
#include <functional>
#include <vector>

namespace mqsp::parallel {

/// Process-wide execution configuration. `threads == 0` means "resolve
/// automatically" (MQSP_THREADS, then hardware concurrency).
struct ExecutionConfig {
    unsigned threads = 0;

    friend bool operator==(const ExecutionConfig&, const ExecutionConfig&) = default;
};

/// max(1, std::thread::hardware_concurrency()).
[[nodiscard]] unsigned hardwareThreads() noexcept;

/// Resolve a requested worker count: `requested` when > 0, else the
/// MQSP_THREADS environment variable when set and > 0, else
/// hardwareThreads(). Throws InvalidArgumentError when MQSP_THREADS is set
/// but not a positive integer.
[[nodiscard]] unsigned resolveThreadCount(unsigned requested = 0);

/// The process-wide thread count all kernels run at (resolved lazily on
/// first use). `setGlobalThreads(n)` re-resolves (n == 0 -> automatic) and
/// swaps the shared pool; it must not be called from inside a parallel
/// region, but is safe against regions in flight on *other* threads —
/// those finish undisturbed at the old width (the retired pool lives until
/// its last in-flight submitter releases it) and the new width applies to
/// subsequent regions.
[[nodiscard]] unsigned globalThreads();
void setGlobalThreads(unsigned threads);

/// The configuration currently in effect (threads already resolved).
[[nodiscard]] ExecutionConfig globalExecutionConfig();

/// True while the calling thread is executing a chunk of a parallel region
/// — the condition under which nested parallel calls run inline.
[[nodiscard]] bool insideParallelRegion() noexcept;

/// RAII: pin the process-wide thread count to `threads` for the current
/// scope, restoring the previous count on exit. A request of 0 ("follow
/// the ambient setting") and any request made from inside a parallel
/// region (where the width is already pinned and reconfiguration is
/// forbidden) are no-ops. Shared by the evaluation backends, the bench
/// harness, and the test suites.
///
/// The width is process-wide state: overlapping guards on *different*
/// application threads interleave their save/restore pairs and end at an
/// arbitrary width. Pin from one coordinating thread at a time (the CLI
/// tools and the harness do); for concurrent work items, use one pinned
/// scope around a batch and let nested-use refusal serialize the items'
/// inner kernels.
class ScopedThreadCount {
public:
    explicit ScopedThreadCount(unsigned threads);
    ~ScopedThreadCount();
    ScopedThreadCount(const ScopedThreadCount&) = delete;
    ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

private:
    unsigned previous_ = 0;
    bool changed_ = false;
};

/// Test support: run `fn(threadIndex)` on `count` plain std::threads that
/// start together (barrier) and are joined before returning; the first
/// exception any of them throws is rethrown on the caller. This bypasses
/// the TaskPool entirely — it exists to hammer concurrent data structures
/// (the sharded uniquing table, the compute cache) with genuinely
/// simultaneous callers, which the pool's one-region-at-a-time submission
/// discipline cannot express.
void runOnThreads(unsigned count, const std::function<void(unsigned)>& fn);

namespace detail {

/// Non-owning callable reference (avoids a std::function allocation per
/// gate application). The callee outlives the call by construction: chunk
/// bodies live on the submitting frame's stack.
class ChunkFnRef {
public:
    template <typename Fn>
    ChunkFnRef(Fn& fn) // NOLINT(google-explicit-constructor): binder type
        : ctx_(const_cast<void*>(static_cast<const void*>(&fn))),
          call_([](void* ctx, std::uint64_t begin, std::uint64_t end) {
              (*static_cast<Fn*>(ctx))(begin, end);
          }) {}

    void operator()(std::uint64_t begin, std::uint64_t end) const { call_(ctx_, begin, end); }

private:
    void* ctx_;
    void (*call_)(void*, std::uint64_t, std::uint64_t);
};

/// Run `chunk` over [begin, end) split into grain-sized chunks on the
/// shared pool. Requires begin < end and an effective thread count > 1;
/// callers go through the templates below, which handle the serial cases.
void runOnPool(std::uint64_t begin, std::uint64_t end, std::uint64_t grain, ChunkFnRef chunk);

/// Number of grain-sized chunks covering [begin, end).
[[nodiscard]] inline std::uint64_t chunkCount(std::uint64_t begin, std::uint64_t end,
                                              std::uint64_t grain) noexcept {
    const std::uint64_t n = end - begin;
    return (n + grain - 1) / grain;
}

} // namespace detail

/// A fixed-size pool of `threads - 1` workers (the calling thread
/// participates as the remaining one). One parallel region runs at a time;
/// concurrent top-level submissions serialize. Exceptions thrown by chunk
/// bodies abort the remaining chunks and the *first* one is rethrown on
/// the submitting thread. Normally used through the free functions below
/// and the shared global pool; constructed directly in tests.
class TaskPool {
public:
    explicit TaskPool(unsigned threads);
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    [[nodiscard]] unsigned threadCount() const noexcept { return threads_; }

    /// Execute `chunk(chunkBegin, chunkEnd)` over grain-sized chunks of
    /// [begin, end). Chunks are claimed dynamically but their boundaries
    /// are fixed by `grain` alone.
    void run(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
             detail::ChunkFnRef chunk);

private:
    struct Impl;
    Impl* impl_;
    unsigned threads_;
};

/// Apply `chunk(chunkBegin, chunkEnd)` across [begin, end). The body must
/// be correct for any partition of the range into half-open chunks; writes
/// to distinct indices need no synchronization. Runs inline (one chunk,
/// the whole range) when the range fits one grain, the effective thread
/// count is 1, or the caller is already inside a parallel region.
template <typename Chunk>
void parallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t grain, Chunk&& chunk) {
    if (begin >= end) {
        return;
    }
    if (grain == 0) {
        grain = 1;
    }
    if (detail::chunkCount(begin, end, grain) <= 1 || insideParallelRegion() ||
        globalThreads() <= 1) {
        chunk(begin, end);
        return;
    }
    detail::runOnPool(begin, end, grain, detail::ChunkFnRef(chunk));
}

/// Ordered-chunk reduction: `map(chunkBegin, chunkEnd) -> T` per chunk,
/// partials combined left-to-right in chunk order as
/// `acc = combine(acc, partial)` starting from `identity`. Chunk
/// boundaries are fixed by `grain` alone, so the result is bit-stable
/// across thread counts (including 1).
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallelReduce(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                               T identity, Map&& map, Combine&& combine) {
    if (begin >= end) {
        return identity;
    }
    if (grain == 0) {
        grain = 1;
    }
    const std::uint64_t chunks = detail::chunkCount(begin, end, grain);
    if (chunks == 1) {
        return combine(identity, map(begin, end));
    }
    std::vector<T> partials(chunks, identity);
    auto mapChunk = [&](std::uint64_t chunkBegin, std::uint64_t chunkEnd) {
        partials[(chunkBegin - begin) / grain] = map(chunkBegin, chunkEnd);
    };
    if (insideParallelRegion() || globalThreads() <= 1) {
        for (std::uint64_t c = 0; c < chunks; ++c) {
            const std::uint64_t chunkBegin = begin + c * grain;
            const std::uint64_t chunkEnd = chunkBegin + grain < end ? chunkBegin + grain : end;
            mapChunk(chunkBegin, chunkEnd);
        }
    } else {
        detail::runOnPool(begin, end, grain, detail::ChunkFnRef(mapChunk));
    }
    T result = identity;
    for (const T& partial : partials) {
        result = combine(result, partial);
    }
    return result;
}

} // namespace mqsp::parallel
