#pragma once

#include <chrono>

namespace mqsp {

/// Simple wall-clock stopwatch used by the benchmark harness to report the
/// "Time [s]" column of the paper's Table 1.
class WallTimer {
public:
    WallTimer() : start_(Clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double elapsedSeconds() const {
        const auto delta = Clock::now() - start_;
        return std::chrono::duration<double>(delta).count();
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace mqsp
