#pragma once

#include <stdexcept>
#include <string>

namespace mqsp {

/// Base class for all errors raised by the mqsp library.
class Error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Raised when an argument violates a documented precondition
/// (e.g. a qudit dimension < 2, a state vector of mismatched length).
class InvalidArgumentError : public Error {
public:
    using Error::Error;
};

/// Raised when an internal invariant is violated. Seeing this exception
/// indicates a bug in the library, not in the caller.
class InternalError : public Error {
public:
    using Error::Error;
};

namespace detail {
[[noreturn]] inline void throwInvalidArgument(const std::string& message) {
    throw InvalidArgumentError(message);
}
[[noreturn]] inline void throwInternal(const std::string& message) {
    throw InternalError(message);
}
} // namespace detail

/// Check a caller-facing precondition; throws InvalidArgumentError on failure.
inline void requireThat(bool condition, const std::string& message) {
    if (!condition) {
        detail::throwInvalidArgument(message);
    }
}

/// Check an internal invariant; throws InternalError on failure.
inline void ensureThat(bool condition, const std::string& message) {
    if (!condition) {
        detail::throwInternal(message);
    }
}

} // namespace mqsp
