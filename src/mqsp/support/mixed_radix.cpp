#include "mqsp/support/mixed_radix.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parse.hpp"

#include <cctype>
#include <limits>
#include <sstream>

namespace mqsp {

MixedRadix::MixedRadix(Dimensions dimensions) : dimensions_(std::move(dimensions)) {
    requireThat(!dimensions_.empty(), "MixedRadix: dimension list must not be empty");
    strides_.assign(dimensions_.size(), 1);
    // Strides are computed least-significant-first; stride of the last qudit is 1.
    for (std::size_t i = dimensions_.size(); i-- > 0;) {
        const auto dim = dimensions_[i];
        requireThat(dim >= 2, "MixedRadix: every qudit dimension must be >= 2");
        if (i + 1 < dimensions_.size()) {
            strides_[i] = strides_[i + 1] * dimensions_[i + 1];
        }
        const auto maxTotal = std::numeric_limits<std::uint64_t>::max();
        requireThat(total_ <= maxTotal / dim, "MixedRadix: total dimension overflows 64 bits");
        total_ *= dim;
    }
}

Dimension MixedRadix::dimensionAt(std::size_t site) const {
    requireThat(site < dimensions_.size(), "MixedRadix::dimensionAt: site out of range");
    return dimensions_[site];
}

std::uint64_t MixedRadix::strideAt(std::size_t site) const {
    requireThat(site < strides_.size(), "MixedRadix::strideAt: site out of range");
    return strides_[site];
}

std::uint64_t MixedRadix::indexOf(const Digits& digits) const {
    requireThat(digits.size() == dimensions_.size(),
                "MixedRadix::indexOf: digit count does not match qudit count");
    std::uint64_t index = 0;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        requireThat(digits[i] < dimensions_[i], "MixedRadix::indexOf: digit exceeds dimension");
        index += static_cast<std::uint64_t>(digits[i]) * strides_[i];
    }
    return index;
}

Digits MixedRadix::digitsOf(std::uint64_t index) const {
    requireThat(index < total_, "MixedRadix::digitsOf: index out of range");
    Digits digits(dimensions_.size(), 0);
    for (std::size_t i = 0; i < dimensions_.size(); ++i) {
        digits[i] = static_cast<Level>(index / strides_[i]);
        index %= strides_[i];
    }
    return digits;
}

Level MixedRadix::digitAt(std::uint64_t index, std::size_t site) const {
    requireThat(index < total_, "MixedRadix::digitAt: index out of range");
    requireThat(site < dimensions_.size(), "MixedRadix::digitAt: site out of range");
    return static_cast<Level>((index / strides_[site]) % dimensions_[site]);
}

bool MixedRadix::increment(Digits& digits) const {
    requireThat(digits.size() == dimensions_.size(),
                "MixedRadix::increment: digit count does not match qudit count");
    for (std::size_t i = digits.size(); i-- > 0;) {
        if (++digits[i] < dimensions_[i]) {
            return true;
        }
        digits[i] = 0;
    }
    return false;
}

std::string MixedRadix::toKetString(const Digits& digits) {
    std::ostringstream out;
    out << '|';
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i > 0) {
            out << ' ';
        }
        out << digits[i];
    }
    out << '>';
    return out.str();
}

bool MixedRadix::isUniform() const noexcept {
    for (const auto dim : dimensions_) {
        if (dim != dimensions_.front()) {
            return false;
        }
    }
    return true;
}

Dimensions parseDimensionSpec(const std::string& spec) {
    Dimensions dims;
    std::string cleaned;
    cleaned.reserve(spec.size());
    for (const char ch : spec) {
        if (ch == '[' || ch == ']' || std::isspace(static_cast<unsigned char>(ch)) != 0) {
            continue;
        }
        cleaned.push_back(ch);
    }
    requireThat(!cleaned.empty(), "parseDimensionSpec: empty specification");

    // Untrusted text: both fields parse strictly (whole token, no sign
    // wrapping) and bound-check before they size anything, so "2xq",
    // "-3x2", or "9999999999x2" all fail with an actionable message
    // instead of a bare stoull exception or a wrapped allocation.
    constexpr std::uint64_t kMaxQudits = 1U << 20U;
    std::stringstream stream(cleaned);
    std::string entry;
    while (std::getline(stream, entry, ',')) {
        requireThat(!entry.empty(), "parseDimensionSpec: empty entry in specification");
        const auto cross = entry.find_first_of("xX*");
        std::uint64_t count = 1;
        std::string dimText = entry;
        if (cross != std::string::npos) {
            const std::string countText = entry.substr(0, cross);
            dimText = entry.substr(cross + 1);
            requireThat(!countText.empty() && !dimText.empty(),
                        "parseDimensionSpec: malformed CountxDimension entry '" +
                            parse::clipForMessage(entry) + "' (expected Count x Dimension)");
            count = parse::uint64(countText, "parseDimensionSpec: count in entry '" +
                                                 parse::clipForMessage(entry) + "'");
            requireThat(count >= 1, "parseDimensionSpec: count must be >= 1 in entry '" +
                                        parse::clipForMessage(entry) + "'");
        }
        const auto dim = parse::uint64(dimText, "parseDimensionSpec: dimension in entry '" +
                                                    parse::clipForMessage(entry) + "'");
        requireThat(dim >= 2, "parseDimensionSpec: dimension must be >= 2 in entry '" +
                                  parse::clipForMessage(entry) + "'");
        requireThat(dim <= std::numeric_limits<Dimension>::max(),
                    "parseDimensionSpec: dimension overflows in entry '" +
                        parse::clipForMessage(entry) + "'");
        requireThat(count <= kMaxQudits && dims.size() + count <= kMaxQudits,
                    "parseDimensionSpec: register exceeds " + std::to_string(kMaxQudits) +
                        " qudits in entry '" + parse::clipForMessage(entry) + "'");
        dims.insert(dims.end(), static_cast<std::size_t>(count), static_cast<Dimension>(dim));
    }
    requireThat(!dims.empty(), "parseDimensionSpec: no dimensions parsed");
    return dims;
}

std::string formatDimensionSpec(const Dimensions& dimensions) {
    std::ostringstream out;
    out << '[';
    std::size_t i = 0;
    bool first = true;
    while (i < dimensions.size()) {
        std::size_t j = i;
        while (j < dimensions.size() && dimensions[j] == dimensions[i]) {
            ++j;
        }
        if (!first) {
            out << ',';
        }
        out << (j - i) << 'x' << dimensions[i];
        first = false;
        i = j;
    }
    out << ']';
    return out.str();
}

} // namespace mqsp
