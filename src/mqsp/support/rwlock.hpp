#pragma once

// A writer-preference reader-writer lock. std::shared_mutex leaves the
// reader/writer scheduling policy to the implementation — under a steady
// stream of readers a writer may starve indefinitely, which is exactly the
// failure mode a resident service must not have: its GC/compaction verbs
// are writers, and a service that can never collect is a service that
// eventually refuses every PREP. This lock makes the policy explicit:
//
//   * any number of readers share the lock while no writer holds *or
//     waits for* it;
//   * a waiting writer blocks the admission of new readers, drains the
//     active ones, and runs next;
//   * on writer release, a further waiting writer (if any) goes before
//     the queued readers.
//
// Readers can in principle starve under a continuous stream of writers —
// the deliberate inverse trade: in the serving workload writers (PREP,
// DROP, GC) are rare and bounded while readers (VERIFY, STATS?) are the
// traffic.
//
// Plain mutex + condition variables, no atomics tricks: the lock guards
// command dispatch, where the critical sections are verification calls —
// microseconds to seconds — so the cost of a condvar wait is noise, and
// the simple implementation is auditable and ThreadSanitizer-clean.

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mqsp::support {

class RwLock {
public:
    RwLock() = default;
    RwLock(const RwLock&) = delete;
    RwLock& operator=(const RwLock&) = delete;

    /// Acquire shared (reader) ownership: waits while a writer is active
    /// or waiting (writer preference — see the header comment).
    void lockShared() {
        std::unique_lock<std::mutex> lock(mutex_);
        readersCv_.wait(lock, [this] { return !writerActive_ && waitingWriters_ == 0; });
        ++activeReaders_;
    }

    void unlockShared() {
        const std::lock_guard<std::mutex> lock(mutex_);
        --activeReaders_;
        if (activeReaders_ == 0 && waitingWriters_ > 0) {
            writersCv_.notify_one();
        }
    }

    /// Acquire exclusive (writer) ownership: registers as waiting (which
    /// stops new readers), then waits for active readers to drain.
    void lock() {
        std::unique_lock<std::mutex> lock(mutex_);
        ++waitingWriters_;
        writersCv_.wait(lock, [this] { return !writerActive_ && activeReaders_ == 0; });
        --waitingWriters_;
        writerActive_ = true;
    }

    void unlock() {
        const std::lock_guard<std::mutex> lock(mutex_);
        writerActive_ = false;
        if (waitingWriters_ > 0) {
            writersCv_.notify_one();
        } else {
            readersCv_.notify_all();
        }
    }

    /// Test observability (all read under the internal mutex): the
    /// preference contract is asserted against these, not against sleeps.
    [[nodiscard]] std::uint32_t activeReaders() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return activeReaders_;
    }
    [[nodiscard]] std::uint32_t waitingWriters() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return waitingWriters_;
    }
    [[nodiscard]] bool writerActive() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return writerActive_;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable readersCv_; ///< readers wait here while writers hold/wait
    std::condition_variable writersCv_; ///< writers wait here for readers to drain
    std::uint32_t activeReaders_ = 0;
    std::uint32_t waitingWriters_ = 0;
    bool writerActive_ = false;
};

/// RAII shared (reader) ownership of an RwLock.
class SharedLockGuard {
public:
    explicit SharedLockGuard(RwLock& lock) : lock_(lock) { lock_.lockShared(); }
    ~SharedLockGuard() { lock_.unlockShared(); }
    SharedLockGuard(const SharedLockGuard&) = delete;
    SharedLockGuard& operator=(const SharedLockGuard&) = delete;

private:
    RwLock& lock_;
};

/// RAII exclusive (writer) ownership of an RwLock.
class ExclusiveLockGuard {
public:
    explicit ExclusiveLockGuard(RwLock& lock) : lock_(lock) { lock_.lock(); }
    ~ExclusiveLockGuard() { lock_.unlock(); }
    ExclusiveLockGuard(const ExclusiveLockGuard&) = delete;
    ExclusiveLockGuard& operator=(const ExclusiveLockGuard&) = delete;

private:
    RwLock& lock_;
};

} // namespace mqsp::support
