#include "mqsp/support/version.hpp"

#include "mqsp/support/version_info.hpp"

namespace mqsp {

const char* versionString() noexcept { return MQSP_VERSION_STRING; }

} // namespace mqsp
