#include "mqsp/support/version.hpp"

namespace mqsp {

const char* versionString() noexcept { return "1.0.0"; }

} // namespace mqsp
