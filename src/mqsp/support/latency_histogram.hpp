#pragma once

// A lock-free fixed-bucket latency histogram. One bucket per power of two
// of nanoseconds (bucket b counts samples whose bit width is b, i.e.
// values in [2^(b-1), 2^b)), so the whole structure is a fixed array of
// relaxed atomic counters: `record` is two relaxed RMWs (bucket increment
// + max update) with no allocation, no lock, and no contention beyond
// cache-line traffic — safe to call from every serving thread on every
// request.
//
// Determinism contract: the *count* (and the per-bucket counts) depend
// only on how many samples were recorded, never on timing or thread
// interleaving — concurrent increments sum exactly — so counts are
// gateable by the CI metrics gate even though the latencies themselves
// are not. Quantiles are log-bucket estimates: `quantileNs` returns the
// upper bound of the bucket holding the nearest-rank sample, i.e. an
// upper bound with at most 2x relative error — the right fidelity for a
// one-line STATS? report, and monotone in q by construction.

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace mqsp::support {

class LatencyHistogram {
public:
    /// Bucket b holds samples with std::bit_width(ns) == b: bucket 0 is
    /// exactly {0}, bucket 64 is [2^63, 2^64).
    static constexpr std::size_t kBuckets = 65;

    void record(std::uint64_t ns) noexcept {
        counts_[bucketFor(ns)].fetch_add(1, std::memory_order_relaxed);
        std::uint64_t seen = max_.load(std::memory_order_relaxed);
        while (ns > seen &&
               !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
        }
    }

    /// Samples recorded so far (sum of the bucket counters; exact under
    /// concurrent recording once the recorders are quiescent).
    [[nodiscard]] std::uint64_t count() const noexcept {
        std::uint64_t total = 0;
        for (const auto& bucket : counts_) {
            total += bucket.load(std::memory_order_relaxed);
        }
        return total;
    }

    [[nodiscard]] std::uint64_t bucketCount(std::size_t bucket) const noexcept {
        return counts_[bucket].load(std::memory_order_relaxed);
    }

    /// Largest sample recorded (exact, not bucketed); 0 when empty.
    [[nodiscard]] std::uint64_t maxNs() const noexcept {
        return max_.load(std::memory_order_relaxed);
    }

    /// Upper bound of the bucket holding the nearest-rank q-quantile
    /// (q in [0, 1]); 0 when empty. quantileNs(1.0) bounds every sample.
    [[nodiscard]] std::uint64_t quantileNs(double q) const noexcept {
        const std::uint64_t total = count();
        if (total == 0) {
            return 0;
        }
        std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
        if (static_cast<double>(rank) < q * static_cast<double>(total)) {
            ++rank; // ceil
        }
        if (rank == 0) {
            rank = 1;
        }
        if (rank > total) {
            rank = total;
        }
        std::uint64_t cumulative = 0;
        for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
            cumulative += counts_[bucket].load(std::memory_order_relaxed);
            if (cumulative >= rank) {
                return bucketUpperBoundNs(bucket);
            }
        }
        return bucketUpperBoundNs(kBuckets - 1); // racing recorder; bound everything
    }

    /// The bucket a sample lands in, and the largest value of a bucket.
    [[nodiscard]] static std::size_t bucketFor(std::uint64_t ns) noexcept {
        return static_cast<std::size_t>(std::bit_width(ns));
    }
    [[nodiscard]] static std::uint64_t bucketUpperBoundNs(std::size_t bucket) noexcept {
        if (bucket == 0) {
            return 0;
        }
        if (bucket >= 64) {
            return std::numeric_limits<std::uint64_t>::max();
        }
        return (std::uint64_t{1} << bucket) - 1;
    }

    /// Forget every sample (not safe against concurrent recording).
    void reset() noexcept {
        for (auto& bucket : counts_) {
            bucket.store(0, std::memory_order_relaxed);
        }
        max_.store(0, std::memory_order_relaxed);
    }

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
    std::atomic<std::uint64_t> max_{0};
};

} // namespace mqsp::support
