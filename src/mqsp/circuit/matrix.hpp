#pragma once

#include "mqsp/complexnum/complex.hpp"

#include <cstddef>
#include <vector>

namespace mqsp {

/// Small dense complex square matrix. Used for single-qudit gate matrices
/// (dimension = qudit dimension, so at most a few dozen rows) and for
/// equivalence checks in tests and the transpiler. Not intended for
/// register-sized operators — the simulator applies gates without ever
/// materializing those.
class DenseMatrix {
public:
    DenseMatrix() = default;

    /// Zero matrix of size n x n.
    explicit DenseMatrix(std::size_t n);

    /// Identity matrix of size n x n.
    [[nodiscard]] static DenseMatrix identity(std::size_t n);

    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    [[nodiscard]] const Complex& operator()(std::size_t row, std::size_t col) const;
    [[nodiscard]] Complex& operator()(std::size_t row, std::size_t col);

    /// Matrix product this * rhs.
    [[nodiscard]] DenseMatrix multiply(const DenseMatrix& rhs) const;

    /// Conjugate transpose.
    [[nodiscard]] DenseMatrix adjoint() const;

    /// Matrix-vector product this * v.
    [[nodiscard]] std::vector<Complex> apply(const std::vector<Complex>& v) const;

    /// True when U U^dagger == I within tol (max componentwise deviation).
    [[nodiscard]] bool isUnitary(double tol = 1e-9) const;

    /// True when all entries match within tol.
    [[nodiscard]] bool approxEquals(const DenseMatrix& other, double tol = 1e-9) const;

    /// Max componentwise |a - b| against another matrix of the same size.
    [[nodiscard]] double maxDeviation(const DenseMatrix& other) const;

private:
    std::size_t n_ = 0;
    std::vector<Complex> data_;
};

} // namespace mqsp
