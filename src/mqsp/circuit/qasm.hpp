#pragma once

#include "mqsp/circuit/circuit.hpp"

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace mqsp {

/// Emit a circuit in the mqsp QASM dialect — a human-readable, line-oriented
/// format in the spirit of the qudit dialects used by qudit toolkits:
///
/// ```
/// MQSPQASM 1.0;
/// // optional comments
/// qreg q[3] = [3, 6, 2];            // most significant site first
/// rxy q[0] (0, 1, 1.9106, 0.0);     // Givens R_{0,1}(theta, phi)
/// rz  q[1] (2, 3, -0.7854);         // two-level phase Z_{2,3}(theta)
/// h   q[0];                         // generalized Hadamard
/// x   q[2] (+1);                    // cyclic shift
/// swp q[1] (0, 4);                  // exact two-level transposition
/// rxy q[1] (0, 1, 3.1416, 1.5708) ctl q[0]=2, q[2]=1;
/// ```
///
/// Angles are printed with 17 significant digits and round-trip exactly.
void emitQasm(std::ostream& out, const Circuit& circuit);

/// Convenience wrapper returning the dialect text.
[[nodiscard]] std::string toQasm(const Circuit& circuit);

/// Incremental MQSP-QASM reader: the streaming counterpart of parseQasm.
///
/// Construction consumes the header and the qreg declaration eagerly (so
/// dimensions() is available immediately and a malformed preamble fails
/// fast); each next() call then reads exactly one gate statement from the
/// underlying stream. State is one line of text plus the register geometry
/// — O(1) in the circuit length — so circuits whose full text exceeds
/// memory replay gate-by-gate straight off a pipe or socket.
///
/// Every yielded operation is validated against the declared register
/// (validateOperation) before it is returned. Errors — syntax, numeric
/// range, and register-admissibility alike — throw InvalidArgumentError
/// with the same line-numbered "parseQasm: line N: ..." messages the
/// whole-circuit parser produces.
class GateStream final : public OperationSource {
public:
    /// Parse the header + qreg preamble of `in`; the stream must outlive
    /// this reader.
    explicit GateStream(std::istream& in);

    /// The declared register.
    [[nodiscard]] const Dimensions& dimensions() const override { return radix_.dimensions(); }
    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }

    /// Parse and validate the next gate statement; nullopt once the stream
    /// is exhausted (eof() turns true).
    [[nodiscard]] std::optional<Operation> next() override;

    /// True once the underlying stream has run out of statements.
    [[nodiscard]] bool eof() const noexcept { return eof_; }

    /// Gates successfully yielded so far.
    [[nodiscard]] std::uint64_t opsRead() const noexcept { return opsRead_; }

    /// 1-based number of the last line read (error messages cite it).
    [[nodiscard]] std::size_t lineNumber() const noexcept { return lineNumber_; }

private:
    /// Load the next line that still has content after comment stripping.
    bool nextMeaningfulLine();

    std::istream* in_;
    MixedRadix radix_;
    std::string line_;
    std::size_t lineNumber_ = 0;
    std::uint64_t opsRead_ = 0;
    bool eof_ = false;
};

/// Parse the dialect emitted by emitQasm. Accepts arbitrary whitespace,
/// full-line and trailing `//` comments, and validates every site, level
/// and control against the declared register. Throws InvalidArgumentError
/// with a line-numbered message on malformed input. Implemented as a thin
/// drain of a GateStream — the incremental reader is the parser.
[[nodiscard]] Circuit parseQasm(std::istream& in);

/// Parse from a string.
[[nodiscard]] Circuit parseQasmString(const std::string& text);

/// Parse ONE gate statement (no header, no qreg) against an already-known
/// register — the entry point for delta surfaces such as the serve APPEND
/// verb, where single gates arrive long after the register was declared.
/// `lineNumber` seeds the "parseQasm: line N: ..." error prefix (default 1
/// for standalone statements). The returned operation has been validated
/// against `radix`.
[[nodiscard]] Operation parseQasmStatement(const std::string& text, const MixedRadix& radix,
                                           std::size_t lineNumber = 1);

} // namespace mqsp
