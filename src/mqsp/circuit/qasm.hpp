#pragma once

#include "mqsp/circuit/circuit.hpp"

#include <iosfwd>
#include <string>

namespace mqsp {

/// Emit a circuit in the mqsp QASM dialect — a human-readable, line-oriented
/// format in the spirit of the qudit dialects used by qudit toolkits:
///
/// ```
/// MQSPQASM 1.0;
/// // optional comments
/// qreg q[3] = [3, 6, 2];            // most significant site first
/// rxy q[0] (0, 1, 1.9106, 0.0);     // Givens R_{0,1}(theta, phi)
/// rz  q[1] (2, 3, -0.7854);         // two-level phase Z_{2,3}(theta)
/// h   q[0];                         // generalized Hadamard
/// x   q[2] (+1);                    // cyclic shift
/// swp q[1] (0, 4);                  // exact two-level transposition
/// rxy q[1] (0, 1, 3.1416, 1.5708) ctl q[0]=2, q[2]=1;
/// ```
///
/// Angles are printed with 17 significant digits and round-trip exactly.
void emitQasm(std::ostream& out, const Circuit& circuit);

/// Convenience wrapper returning the dialect text.
[[nodiscard]] std::string toQasm(const Circuit& circuit);

/// Parse the dialect emitted by emitQasm. Accepts arbitrary whitespace,
/// full-line and trailing `//` comments, and validates every site, level
/// and control against the declared register. Throws InvalidArgumentError
/// with a line-numbered message on malformed input.
[[nodiscard]] Circuit parseQasm(std::istream& in);

/// Parse from a string.
[[nodiscard]] Circuit parseQasmString(const std::string& text);

} // namespace mqsp
