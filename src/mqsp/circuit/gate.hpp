#pragma once

#include "mqsp/circuit/matrix.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace mqsp {

/// A control condition: the operation fires only on the subspace where
/// qudit `qudit` is in level `level`. This matches the paper's circuit
/// notation where the control level is written inside the control circle
/// (Figure 1).
struct Control {
    std::size_t qudit = 0;
    Level level = 0;

    friend bool operator==(const Control&, const Control&) = default;
    friend auto operator<=>(const Control&, const Control&) = default;
};

/// The gate alphabet of the synthesizer and simulator.
enum class GateKind {
    /// Two-level Givens rotation R_{i,j}(theta, phi) — the paper's Eq. in
    /// §4.2: exp(-i theta/2 (cos(phi) sigma_x^{ij} + sin(phi) sigma_y^{ij})).
    GivensRotation,
    /// Two-level phase rotation Z_{i,j}(theta) = diag(..., e^{+i theta/2} at
    /// level i, ..., e^{-i theta/2} at level j, ...). The sign convention
    /// makes the paper's §4.2 identity hold verbatim:
    /// Z(t) = R(-pi/2,0) R(t,pi/2) R(pi/2,0).
    PhaseRotation,
    /// Generalized d-level Hadamard (discrete Fourier transform), as in the
    /// paper's Example 2.
    Hadamard,
    /// Cyclic level shift X^{+k}: |m> -> |(m+k) mod d>, the "+1"/"+2"
    /// increments of Figure 1.
    Shift,
    /// Exact two-level transposition |i> <-> |j> (no phases, unlike the
    /// Givens rotation at theta = pi). Self-inverse; used by the hardware
    /// router's SWAP synthesis and by level-relabeling passes.
    LevelSwap,
};

/// One (possibly multi-controlled) operation on a mixed-dimensional register.
///
/// `levelA`/`levelB` select the two-dimensional subspace for GivensRotation
/// and PhaseRotation; `shiftAmount` is used by Shift; Hadamard uses neither.
struct Operation {
    GateKind kind = GateKind::GivensRotation;
    std::size_t target = 0;
    Level levelA = 0;
    Level levelB = 1;
    double theta = 0.0;
    double phi = 0.0;
    Level shiftAmount = 0;
    std::vector<Control> controls;

    /// Factory helpers ---------------------------------------------------

    [[nodiscard]] static Operation givens(std::size_t target, Level levelA, Level levelB,
                                          double theta, double phi,
                                          std::vector<Control> controls = {});

    [[nodiscard]] static Operation phase(std::size_t target, Level levelA, Level levelB,
                                         double theta, std::vector<Control> controls = {});

    [[nodiscard]] static Operation hadamard(std::size_t target,
                                            std::vector<Control> controls = {});

    [[nodiscard]] static Operation shift(std::size_t target, Level amount,
                                         std::vector<Control> controls = {});

    [[nodiscard]] static Operation levelSwap(std::size_t target, Level levelA, Level levelB,
                                             std::vector<Control> controls = {});

    /// Number of controls attached to this operation.
    [[nodiscard]] std::size_t numControls() const noexcept { return controls.size(); }

    /// The dense single-qudit matrix of this operation on a qudit of
    /// dimension `dim` (controls excluded). Throws if the levels are out of
    /// range for `dim`.
    [[nodiscard]] DenseMatrix localMatrix(Dimension dim) const;

    /// True when the local matrix is the identity within `tol` — used by the
    /// identity-elision synthesis mode.
    [[nodiscard]] bool isIdentity(double tol = 1e-12) const;

    /// Inverse operation (same kind where possible).
    [[nodiscard]] Operation inverse() const;

    /// Human-readable rendering, e.g. "R(1,2| th=1.9106, ph=-1.5708) @ q1 ctrl[q2=1]".
    [[nodiscard]] std::string toString() const;
};

/// The generalized Hadamard (DFT) matrix of dimension d:
/// H[r][c] = omega^{r c} / sqrt(d), omega = exp(2 pi i / d).
[[nodiscard]] DenseMatrix hadamardMatrix(Dimension dim);

/// The cyclic shift matrix X^{+k} of dimension d.
[[nodiscard]] DenseMatrix shiftMatrix(Dimension dim, Level amount);

/// The two-level Givens rotation matrix embedded in dimension d.
[[nodiscard]] DenseMatrix givensMatrix(Dimension dim, Level levelA, Level levelB, double theta,
                                       double phi);

/// The two-level phase rotation matrix embedded in dimension d.
[[nodiscard]] DenseMatrix phaseMatrix(Dimension dim, Level levelA, Level levelB, double theta);

/// The exact two-level transposition matrix embedded in dimension d.
[[nodiscard]] DenseMatrix levelSwapMatrix(Dimension dim, Level levelA, Level levelB);

} // namespace mqsp
