#include "mqsp/circuit/circuit.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>

namespace mqsp {

Circuit::Circuit(Dimensions dimensions, std::string name)
    : radix_(std::move(dimensions)), name_(std::move(name)) {}

std::size_t Circuit::append(Operation op) {
    validate(op);
    ops_.push_back(std::move(op));
    return ops_.size() - 1;
}

void Circuit::append(const Circuit& other) {
    requireThat(radix_ == other.radix_, "Circuit::append: register dimensions differ");
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

const Operation& Circuit::operator[](std::size_t index) const {
    requireThat(index < ops_.size(), "Circuit: operation index out of range");
    return ops_[index];
}

Circuit Circuit::inverted() const {
    Circuit inv(radix_.dimensions(), name_ + "_inv");
    for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
        inv.append(it->inverse());
    }
    return inv;
}

CircuitStats Circuit::stats() const {
    CircuitStats s;
    s.numOperations = ops_.size();
    std::vector<std::size_t> controlCounts;
    controlCounts.reserve(ops_.size());
    // Greedy ASAP depth: an op occupies its target and all control sites.
    std::vector<std::size_t> siteReady(radix_.numQudits(), 0);
    for (const auto& op : ops_) {
        switch (op.kind) {
        case GateKind::GivensRotation:
            ++s.numRotations;
            break;
        case GateKind::PhaseRotation:
            ++s.numPhases;
            break;
        case GateKind::Hadamard:
        case GateKind::Shift:
        case GateKind::LevelSwap:
            ++s.numOther;
            break;
        }
        const std::size_t numCtrls = op.numControls();
        controlCounts.push_back(numCtrls);
        s.totalControls += numCtrls;
        s.maxControls = std::max(s.maxControls, numCtrls);
        if (numCtrls > 0) {
            ++s.numControlledOps;
        }
        std::size_t slot = siteReady[op.target];
        for (const auto& ctrl : op.controls) {
            slot = std::max(slot, siteReady[ctrl.qudit]);
        }
        ++slot;
        siteReady[op.target] = slot;
        for (const auto& ctrl : op.controls) {
            siteReady[ctrl.qudit] = slot;
        }
        s.depthEstimate = std::max(s.depthEstimate, slot);
    }
    if (!controlCounts.empty()) {
        std::sort(controlCounts.begin(), controlCounts.end());
        const std::size_t n = controlCounts.size();
        if (n % 2 == 1) {
            s.medianControls = static_cast<double>(controlCounts[n / 2]);
        } else {
            s.medianControls = 0.5 * static_cast<double>(controlCounts[n / 2 - 1] +
                                                         controlCounts[n / 2]);
        }
    }
    return s;
}

std::size_t Circuit::removeIdentityOperations(double tol) {
    const std::size_t before = ops_.size();
    std::erase_if(ops_, [tol](const Operation& op) { return op.isIdentity(tol); });
    return before - ops_.size();
}

void Circuit::validate(const Operation& op) const { validateOperation(op, radix_); }

void validateOperation(const Operation& op, const MixedRadix& radix) {
    requireThat(op.target < radix.numQudits(), "Circuit: operation target out of range");
    const Dimension targetDim = radix.dimensionAt(op.target);
    if (op.kind == GateKind::GivensRotation || op.kind == GateKind::PhaseRotation ||
        op.kind == GateKind::LevelSwap) {
        requireThat(op.levelA < targetDim && op.levelB < targetDim,
                    "Circuit: rotation level exceeds the target qudit's dimension");
    }
    if (op.kind == GateKind::Shift) {
        requireThat(op.shiftAmount < targetDim,
                    "Circuit: shift amount must be below the target qudit's dimension");
    }
    for (std::size_t i = 0; i < op.controls.size(); ++i) {
        const auto& ctrl = op.controls[i];
        requireThat(ctrl.qudit < radix.numQudits(), "Circuit: control qudit out of range");
        requireThat(ctrl.qudit != op.target, "Circuit: control cannot sit on the target");
        requireThat(ctrl.level < radix.dimensionAt(ctrl.qudit),
                    "Circuit: control level exceeds the control qudit's dimension");
        for (std::size_t j = i + 1; j < op.controls.size(); ++j) {
            requireThat(op.controls[j].qudit != ctrl.qudit,
                        "Circuit: duplicate control qudit (contradictory or redundant "
                        "conditions are not representable)");
        }
    }
}

CircuitSource::CircuitSource(const Circuit& circuit) : circuit_(&circuit) {}

const Dimensions& CircuitSource::dimensions() const { return circuit_->dimensions(); }

std::optional<Operation> CircuitSource::next() {
    if (cursor_ >= circuit_->numOperations()) {
        return std::nullopt;
    }
    return (*circuit_)[cursor_++];
}

} // namespace mqsp
