#pragma once

#include "mqsp/circuit/gate.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace mqsp {

/// Resource statistics of a circuit; these are the quality metrics of the
/// paper's Table 1 ("Operations" and "#Controls").
struct CircuitStats {
    std::size_t numOperations = 0;      ///< total multi-controlled ops
    std::size_t numRotations = 0;       ///< GivensRotation ops
    std::size_t numPhases = 0;          ///< PhaseRotation ops
    std::size_t numOther = 0;           ///< Hadamard / Shift ops
    std::size_t numControlledOps = 0;   ///< ops with at least one control
    std::size_t totalControls = 0;      ///< sum of control counts
    std::size_t maxControls = 0;        ///< largest control count on any op
    double medianControls = 0.0;        ///< median control count over all ops
    std::size_t depthEstimate = 0;      ///< greedy ASAP-scheduling depth
};

/// A quantum circuit over a mixed-dimensional qudit register.
///
/// Operations are stored in application order (index 0 acts first). The
/// register geometry is fixed at construction; every appended operation is
/// validated against it (target/control sites in range, levels within the
/// site's dimension).
class Circuit {
public:
    Circuit() = default;

    /// Create an empty circuit over the given register.
    explicit Circuit(Dimensions dimensions, std::string name = "circuit");

    /// Register geometry.
    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const Dimensions& dimensions() const noexcept { return radix_.dimensions(); }
    [[nodiscard]] std::size_t numQudits() const noexcept { return radix_.numQudits(); }

    /// Circuit name, used by printers.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /// Append an operation (validated). Returns the operation index.
    std::size_t append(Operation op);

    /// Append all operations of another circuit over the same register.
    void append(const Circuit& other);

    /// Operations in application order.
    [[nodiscard]] const std::vector<Operation>& operations() const noexcept { return ops_; }
    [[nodiscard]] std::size_t numOperations() const noexcept { return ops_.size(); }
    [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
    [[nodiscard]] const Operation& operator[](std::size_t index) const;

    /// The adjoint circuit: inverses of all ops in reverse order.
    /// Requires every op kind to be invertible via Operation::inverse().
    [[nodiscard]] Circuit inverted() const;

    /// Resource statistics (op counts, control-count median, depth).
    [[nodiscard]] CircuitStats stats() const;

    /// Remove ops that are identities within tol; returns how many were removed.
    std::size_t removeIdentityOperations(double tol = 1e-12);

private:
    void validate(const Operation& op) const;

    MixedRadix radix_;
    std::string name_ = "circuit";
    std::vector<Operation> ops_;
};

} // namespace mqsp
