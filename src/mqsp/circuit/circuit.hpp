#pragma once

#include "mqsp/circuit/gate.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace mqsp {

/// Resource statistics of a circuit; these are the quality metrics of the
/// paper's Table 1 ("Operations" and "#Controls").
struct CircuitStats {
    std::size_t numOperations = 0;      ///< total multi-controlled ops
    std::size_t numRotations = 0;       ///< GivensRotation ops
    std::size_t numPhases = 0;          ///< PhaseRotation ops
    std::size_t numOther = 0;           ///< Hadamard / Shift ops
    std::size_t numControlledOps = 0;   ///< ops with at least one control
    std::size_t totalControls = 0;      ///< sum of control counts
    std::size_t maxControls = 0;        ///< largest control count on any op
    double medianControls = 0.0;        ///< median control count over all ops
    std::size_t depthEstimate = 0;      ///< greedy ASAP-scheduling depth
};

class Circuit;

/// Validate one operation against a register geometry — target and control
/// sites in range, levels within each site's dimension, no control on the
/// target, no duplicate controls. This is the check Circuit::append runs on
/// every materialized append; streaming consumers (circuit::GateStream, the
/// serve APPEND verb) call it directly so a gate can be admitted without a
/// Circuit to append it to. Throws InvalidArgumentError ("Circuit: ...").
void validateOperation(const Operation& op, const MixedRadix& radix);

/// A pull source of operations over a fixed register — the streaming
/// counterpart of a materialized Circuit. Consumers (the backend's
/// verifyStream, the bench generators) drain it one operation at a time,
/// so the producer never has to hold the whole circuit: a GateStream
/// parses MQSP-QASM text incrementally, a generator synthesizes gates on
/// the fly, and CircuitSource adapts an in-memory circuit.
class OperationSource {
public:
    OperationSource() = default;
    OperationSource(const OperationSource&) = default;
    OperationSource& operator=(const OperationSource&) = default;
    OperationSource(OperationSource&&) = default;
    OperationSource& operator=(OperationSource&&) = default;
    virtual ~OperationSource() = default;

    /// Register geometry every yielded operation is valid against.
    [[nodiscard]] virtual const Dimensions& dimensions() const = 0;

    /// The next operation in application order, or nullopt at the end of
    /// the stream. Implementations validate before yielding: a returned
    /// operation is always admissible on dimensions().
    [[nodiscard]] virtual std::optional<Operation> next() = 0;
};

/// Adapter presenting a materialized circuit as an OperationSource (the
/// circuit must outlive the source).
class CircuitSource final : public OperationSource {
public:
    explicit CircuitSource(const Circuit& circuit);

    [[nodiscard]] const Dimensions& dimensions() const override;
    [[nodiscard]] std::optional<Operation> next() override;

private:
    const Circuit* circuit_;
    std::size_t cursor_ = 0;
};

/// A quantum circuit over a mixed-dimensional qudit register.
///
/// Operations are stored in application order (index 0 acts first). The
/// register geometry is fixed at construction; every appended operation is
/// validated against it (target/control sites in range, levels within the
/// site's dimension).
class Circuit {
public:
    Circuit() = default;

    /// Create an empty circuit over the given register.
    explicit Circuit(Dimensions dimensions, std::string name = "circuit");

    /// Register geometry.
    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const Dimensions& dimensions() const noexcept { return radix_.dimensions(); }
    [[nodiscard]] std::size_t numQudits() const noexcept { return radix_.numQudits(); }

    /// Circuit name, used by printers.
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /// Append an operation (validated). Returns the operation index.
    std::size_t append(Operation op);

    /// Append all operations of another circuit over the same register.
    void append(const Circuit& other);

    /// Operations in application order.
    [[nodiscard]] const std::vector<Operation>& operations() const noexcept { return ops_; }
    [[nodiscard]] std::size_t numOperations() const noexcept { return ops_.size(); }
    [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }
    [[nodiscard]] const Operation& operator[](std::size_t index) const;

    /// The adjoint circuit: inverses of all ops in reverse order.
    /// Requires every op kind to be invertible via Operation::inverse().
    [[nodiscard]] Circuit inverted() const;

    /// Resource statistics (op counts, control-count median, depth).
    [[nodiscard]] CircuitStats stats() const;

    /// Remove ops that are identities within tol; returns how many were removed.
    std::size_t removeIdentityOperations(double tol = 1e-12);

private:
    void validate(const Operation& op) const;

    MixedRadix radix_;
    std::string name_ = "circuit";
    std::vector<Operation> ops_;
};

} // namespace mqsp
