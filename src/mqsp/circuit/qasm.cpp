#include "mqsp/circuit/qasm.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parse.hpp"

#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

namespace mqsp {

void emitQasm(std::ostream& out, const Circuit& circuit) {
    out << "MQSPQASM 1.0;\n";
    out << "// " << circuit.name() << "\n";
    out << "qreg q[" << circuit.numQudits() << "] = [";
    const auto& dims = circuit.dimensions();
    for (std::size_t i = 0; i < dims.size(); ++i) {
        if (i > 0) {
            out << ", ";
        }
        out << dims[i];
    }
    out << "];\n";
    out << std::setprecision(17);
    for (const auto& op : circuit.operations()) {
        switch (op.kind) {
        case GateKind::GivensRotation:
            out << "rxy q[" << op.target << "] (" << op.levelA << ", " << op.levelB << ", "
                << op.theta << ", " << op.phi << ")";
            break;
        case GateKind::PhaseRotation:
            out << "rz q[" << op.target << "] (" << op.levelA << ", " << op.levelB << ", "
                << op.theta << ")";
            break;
        case GateKind::Hadamard:
            out << "h q[" << op.target << "]";
            break;
        case GateKind::Shift:
            out << "x q[" << op.target << "] (+" << op.shiftAmount << ")";
            break;
        case GateKind::LevelSwap:
            out << "swp q[" << op.target << "] (" << op.levelA << ", " << op.levelB << ")";
            break;
        }
        if (!op.controls.empty()) {
            out << " ctl ";
            for (std::size_t i = 0; i < op.controls.size(); ++i) {
                if (i > 0) {
                    out << ", ";
                }
                out << "q[" << op.controls[i].qudit << "]=" << op.controls[i].level;
            }
        }
        out << ";\n";
    }
}

std::string toQasm(const Circuit& circuit) {
    std::ostringstream out;
    emitQasm(out, circuit);
    return out.str();
}

namespace {

/// Strip a trailing `//` comment and surrounding whitespace; empty result
/// means the line carries no statement.
[[nodiscard]] std::string stripLine(std::string raw) {
    const auto comment = raw.find("//");
    if (comment != std::string::npos) {
        raw.erase(comment);
    }
    const auto begin = raw.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
        return {};
    }
    const auto end = raw.find_last_not_of(" \t\r");
    return raw.substr(begin, end - begin + 1);
}

/// Recursive-descent scanner over ONE stripped dialect line. Both the
/// streaming reader and the single-statement entry point drive it; the
/// line number is carried only for the "parseQasm: line N: ..." messages.
class LineParser {
public:
    LineParser(const std::string& line, std::size_t lineNumber)
        : line_(&line), lineNumber_(lineNumber) {}

    [[noreturn]] void fail(const std::string& message) const {
        detail::throwInvalidArgument("parseQasm: line " + std::to_string(lineNumber_) +
                                     ": " + message);
    }

    /// "MQSPQASM 1.0;" — the whole header line.
    void header() {
        const std::string keyword = word();
        if (keyword != "MQSPQASM") {
            fail("expected MQSPQASM header, got '" + keyword + "'");
        }
        const std::string version = word();
        if (version != "1.0") {
            fail("unsupported version '" + version + "'");
        }
        expect(';', "header");
    }

    /// "qreg q[n] = [d, ...];" — the whole register line.
    [[nodiscard]] Dimensions qreg() {
        if (word() != "qreg") {
            fail("expected qreg declaration");
        }
        const std::size_t count = site();
        expect('=', "qreg dimensions");
        expect('[', "qreg dimensions");
        Dimensions dims;
        while (true) {
            dims.push_back(static_cast<Dimension>(integer()));
            if (!consume(',')) {
                break;
            }
        }
        expect(']', "qreg dimensions");
        expect(';', "qreg declaration");
        if (dims.size() != count) {
            fail("qreg declares " + std::to_string(count) + " sites but lists " +
                 std::to_string(dims.size()) + " dimensions");
        }
        return dims;
    }

    /// One whole gate statement through the terminating ';'. The returned
    /// operation is syntax-only — the caller validates it against the
    /// register (and re-raises through fail for the line-numbered message).
    [[nodiscard]] Operation gateStatement() {
        const std::string gate = word();
        if (gate.empty()) {
            fail("expected a gate name");
        }
        const std::size_t target = site();

        Operation op;
        if (gate == "rxy") {
            expect('(', "rxy parameters");
            const auto a = static_cast<Level>(integer());
            expect(',', "rxy parameters");
            const auto b = static_cast<Level>(integer());
            expect(',', "rxy parameters");
            const double theta = number();
            expect(',', "rxy parameters");
            const double phi = number();
            expect(')', "rxy parameters");
            op = Operation::givens(target, a, b, theta, phi);
        } else if (gate == "rz") {
            expect('(', "rz parameters");
            const auto a = static_cast<Level>(integer());
            expect(',', "rz parameters");
            const auto b = static_cast<Level>(integer());
            expect(',', "rz parameters");
            const double theta = number();
            expect(')', "rz parameters");
            op = Operation::phase(target, a, b, theta);
        } else if (gate == "h") {
            op = Operation::hadamard(target);
        } else if (gate == "x") {
            expect('(', "shift amount");
            expect('+', "shift amount");
            const auto amount = static_cast<Level>(integer());
            expect(')', "shift amount");
            op = Operation::shift(target, amount);
        } else if (gate == "swp") {
            expect('(', "swap levels");
            const auto a = static_cast<Level>(integer());
            expect(',', "swap levels");
            const auto b = static_cast<Level>(integer());
            expect(')', "swap levels");
            op = Operation::levelSwap(target, a, b);
        } else {
            fail("unknown gate '" + gate + "'");
        }

        skipSpace();
        if (line_->compare(cursor_, 3, "ctl") == 0) {
            cursor_ += 3;
            op.controls = parseControls();
        }
        expect(';', "statement");
        skipSpace();
        if (cursor_ != line_->size()) {
            fail("trailing characters after ';'");
        }
        return op;
    }

private:
    void skipSpace() {
        while (cursor_ < line_->size() &&
               std::isspace(static_cast<unsigned char>((*line_)[cursor_])) != 0) {
            ++cursor_;
        }
    }

    bool consume(char ch) {
        skipSpace();
        if (cursor_ < line_->size() && (*line_)[cursor_] == ch) {
            ++cursor_;
            return true;
        }
        return false;
    }

    void expect(char ch, const char* what) {
        if (!consume(ch)) {
            fail(std::string("expected '") + ch + "' (" + what + ")");
        }
    }

    std::string word() {
        skipSpace();
        std::size_t start = cursor_;
        while (cursor_ < line_->size() &&
               (std::isalnum(static_cast<unsigned char>((*line_)[cursor_])) != 0 ||
                (*line_)[cursor_] == '.' || (*line_)[cursor_] == '_')) {
            ++cursor_;
        }
        return line_->substr(start, cursor_ - start);
    }

    std::uint64_t integer() {
        skipSpace();
        std::size_t start = cursor_;
        while (cursor_ < line_->size() &&
               std::isdigit(static_cast<unsigned char>((*line_)[cursor_])) != 0) {
            ++cursor_;
        }
        if (start == cursor_) {
            fail("expected an integer");
        }
        const std::string digits = line_->substr(start, cursor_ - start);
        const auto value = parse::tryUint64(digits);
        if (!value.has_value()) {
            // Digits-only text can only miss by overflowing 64 bits.
            fail("integer '" + parse::clipForMessage(digits) + "' overflows");
        }
        return *value;
    }

    double number() {
        skipSpace();
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(line_->substr(cursor_), &consumed);
        } catch (const std::exception&) {
            fail("expected a number");
        }
        cursor_ += consumed;
        return value;
    }

    /// "q[<index>]" -> index.
    std::size_t site() {
        skipSpace();
        if (cursor_ >= line_->size() || (*line_)[cursor_] != 'q') {
            fail("expected a qudit reference q[i]");
        }
        ++cursor_;
        expect('[', "qudit reference");
        const auto index = static_cast<std::size_t>(integer());
        expect(']', "qudit reference");
        return index;
    }

    std::vector<Control> parseControls() {
        std::vector<Control> controls;
        while (true) {
            const std::size_t qudit = site();
            expect('=', "control level");
            const auto level = static_cast<Level>(integer());
            controls.push_back({qudit, level});
            if (!consume(',')) {
                break;
            }
        }
        return controls;
    }

    const std::string* line_;
    std::size_t cursor_ = 0;
    std::size_t lineNumber_;
};

/// Parse + register-validate one stripped statement line, re-raising any
/// admissibility error with the line-numbered prefix.
[[nodiscard]] Operation statementOn(const std::string& line, std::size_t lineNumber,
                                    const MixedRadix& radix) {
    LineParser parser(line, lineNumber);
    Operation op = parser.gateStatement();
    try {
        validateOperation(op, radix);
    } catch (const InvalidArgumentError& error) {
        parser.fail(error.what());
    }
    return op;
}

} // namespace

GateStream::GateStream(std::istream& in) : in_(&in) {
    if (!nextMeaningfulLine()) {
        LineParser(line_, lineNumber_).fail("missing MQSPQASM header");
    }
    LineParser(line_, lineNumber_).header();
    if (!nextMeaningfulLine()) {
        LineParser(line_, lineNumber_).fail("missing qreg declaration");
    }
    LineParser qregParser(line_, lineNumber_);
    radix_ = MixedRadix(qregParser.qreg());
}

bool GateStream::nextMeaningfulLine() {
    std::string raw;
    while (std::getline(*in_, raw)) {
        ++lineNumber_;
        std::string stripped = stripLine(std::move(raw));
        if (stripped.empty()) {
            continue;
        }
        line_ = std::move(stripped);
        return true;
    }
    return false;
}

std::optional<Operation> GateStream::next() {
    if (eof_) {
        return std::nullopt;
    }
    if (!nextMeaningfulLine()) {
        eof_ = true;
        return std::nullopt;
    }
    Operation op = statementOn(line_, lineNumber_, radix_);
    ++opsRead_;
    return op;
}

Circuit parseQasm(std::istream& in) {
    GateStream stream(in);
    Circuit circuit(stream.dimensions(), "parsed");
    while (auto op = stream.next()) {
        circuit.append(std::move(*op));
    }
    return circuit;
}

Circuit parseQasmString(const std::string& text) {
    std::istringstream stream(text);
    return parseQasm(stream);
}

Operation parseQasmStatement(const std::string& text, const MixedRadix& radix,
                             std::size_t lineNumber) {
    const std::string stripped = stripLine(text);
    if (stripped.empty()) {
        LineParser(stripped, lineNumber).fail("expected a gate name");
    }
    return statementOn(stripped, lineNumber, radix);
}

} // namespace mqsp
