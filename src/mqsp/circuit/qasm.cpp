#include "mqsp/circuit/qasm.hpp"

#include "mqsp/support/error.hpp"

#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace mqsp {

void emitQasm(std::ostream& out, const Circuit& circuit) {
    out << "MQSPQASM 1.0;\n";
    out << "// " << circuit.name() << "\n";
    out << "qreg q[" << circuit.numQudits() << "] = [";
    const auto& dims = circuit.dimensions();
    for (std::size_t i = 0; i < dims.size(); ++i) {
        if (i > 0) {
            out << ", ";
        }
        out << dims[i];
    }
    out << "];\n";
    out << std::setprecision(17);
    for (const auto& op : circuit.operations()) {
        switch (op.kind) {
        case GateKind::GivensRotation:
            out << "rxy q[" << op.target << "] (" << op.levelA << ", " << op.levelB << ", "
                << op.theta << ", " << op.phi << ")";
            break;
        case GateKind::PhaseRotation:
            out << "rz q[" << op.target << "] (" << op.levelA << ", " << op.levelB << ", "
                << op.theta << ")";
            break;
        case GateKind::Hadamard:
            out << "h q[" << op.target << "]";
            break;
        case GateKind::Shift:
            out << "x q[" << op.target << "] (+" << op.shiftAmount << ")";
            break;
        case GateKind::LevelSwap:
            out << "swp q[" << op.target << "] (" << op.levelA << ", " << op.levelB << ")";
            break;
        }
        if (!op.controls.empty()) {
            out << " ctl ";
            for (std::size_t i = 0; i < op.controls.size(); ++i) {
                if (i > 0) {
                    out << ", ";
                }
                out << "q[" << op.controls[i].qudit << "]=" << op.controls[i].level;
            }
        }
        out << ";\n";
    }
}

std::string toQasm(const Circuit& circuit) {
    std::ostringstream out;
    emitQasm(out, circuit);
    return out.str();
}

namespace {

/// Minimal recursive-descent tokenizer/parser for the dialect. Keeps the
/// current line number for error messages.
class QasmParser {
public:
    explicit QasmParser(std::istream& in) : in_(in) {}

    Circuit parse() {
        expectHeader();
        Circuit circuit = expectRegister();
        while (nextMeaningfulLine()) {
            parseStatement(circuit);
        }
        return circuit;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        detail::throwInvalidArgument("parseQasm: line " + std::to_string(lineNumber_) +
                                     ": " + message);
    }

    /// Load the next line that still has content after comment stripping.
    bool nextMeaningfulLine() {
        std::string raw;
        while (std::getline(in_, raw)) {
            ++lineNumber_;
            const auto comment = raw.find("//");
            if (comment != std::string::npos) {
                raw.erase(comment);
            }
            // Trim.
            const auto begin = raw.find_first_not_of(" \t\r");
            if (begin == std::string::npos) {
                continue;
            }
            const auto end = raw.find_last_not_of(" \t\r");
            line_ = raw.substr(begin, end - begin + 1);
            cursor_ = 0;
            return true;
        }
        return false;
    }

    void skipSpace() {
        while (cursor_ < line_.size() &&
               std::isspace(static_cast<unsigned char>(line_[cursor_])) != 0) {
            ++cursor_;
        }
    }

    bool consume(char ch) {
        skipSpace();
        if (cursor_ < line_.size() && line_[cursor_] == ch) {
            ++cursor_;
            return true;
        }
        return false;
    }

    void expect(char ch, const char* what) {
        if (!consume(ch)) {
            fail(std::string("expected '") + ch + "' (" + what + ")");
        }
    }

    std::string word() {
        skipSpace();
        std::size_t start = cursor_;
        while (cursor_ < line_.size() &&
               (std::isalnum(static_cast<unsigned char>(line_[cursor_])) != 0 ||
                line_[cursor_] == '.' || line_[cursor_] == '_')) {
            ++cursor_;
        }
        return line_.substr(start, cursor_ - start);
    }

    std::uint64_t integer() {
        skipSpace();
        std::size_t start = cursor_;
        while (cursor_ < line_.size() &&
               std::isdigit(static_cast<unsigned char>(line_[cursor_])) != 0) {
            ++cursor_;
        }
        if (start == cursor_) {
            fail("expected an integer");
        }
        return std::stoull(line_.substr(start, cursor_ - start));
    }

    double number() {
        skipSpace();
        std::size_t consumed = 0;
        double value = 0.0;
        try {
            value = std::stod(line_.substr(cursor_), &consumed);
        } catch (const std::exception&) {
            fail("expected a number");
        }
        cursor_ += consumed;
        return value;
    }

    /// "q[<index>]" -> index.
    std::size_t site() {
        skipSpace();
        if (cursor_ >= line_.size() || line_[cursor_] != 'q') {
            fail("expected a qudit reference q[i]");
        }
        ++cursor_;
        expect('[', "qudit reference");
        const auto index = static_cast<std::size_t>(integer());
        expect(']', "qudit reference");
        return index;
    }

    void expectHeader() {
        if (!nextMeaningfulLine()) {
            fail("missing MQSPQASM header");
        }
        const std::string keyword = word();
        if (keyword != "MQSPQASM") {
            fail("expected MQSPQASM header, got '" + keyword + "'");
        }
        const std::string version = word();
        if (version != "1.0") {
            fail("unsupported version '" + version + "'");
        }
        expect(';', "header");
    }

    Circuit expectRegister() {
        if (!nextMeaningfulLine()) {
            fail("missing qreg declaration");
        }
        if (word() != "qreg") {
            fail("expected qreg declaration");
        }
        const std::size_t count = site();
        expect('=', "qreg dimensions");
        expect('[', "qreg dimensions");
        Dimensions dims;
        while (true) {
            dims.push_back(static_cast<Dimension>(integer()));
            if (!consume(',')) {
                break;
            }
        }
        expect(']', "qreg dimensions");
        expect(';', "qreg declaration");
        if (dims.size() != count) {
            fail("qreg declares " + std::to_string(count) + " sites but lists " +
                 std::to_string(dims.size()) + " dimensions");
        }
        return Circuit(std::move(dims), "parsed");
    }

    std::vector<Control> parseControls() {
        std::vector<Control> controls;
        while (true) {
            const std::size_t qudit = site();
            expect('=', "control level");
            const auto level = static_cast<Level>(integer());
            controls.push_back({qudit, level});
            if (!consume(',')) {
                break;
            }
        }
        return controls;
    }

    void parseStatement(Circuit& circuit) {
        const std::string gate = word();
        if (gate.empty()) {
            fail("expected a gate name");
        }
        const std::size_t target = site();

        Operation op;
        if (gate == "rxy") {
            expect('(', "rxy parameters");
            const auto a = static_cast<Level>(integer());
            expect(',', "rxy parameters");
            const auto b = static_cast<Level>(integer());
            expect(',', "rxy parameters");
            const double theta = number();
            expect(',', "rxy parameters");
            const double phi = number();
            expect(')', "rxy parameters");
            op = Operation::givens(target, a, b, theta, phi);
        } else if (gate == "rz") {
            expect('(', "rz parameters");
            const auto a = static_cast<Level>(integer());
            expect(',', "rz parameters");
            const auto b = static_cast<Level>(integer());
            expect(',', "rz parameters");
            const double theta = number();
            expect(')', "rz parameters");
            op = Operation::phase(target, a, b, theta);
        } else if (gate == "h") {
            op = Operation::hadamard(target);
        } else if (gate == "x") {
            expect('(', "shift amount");
            expect('+', "shift amount");
            const auto amount = static_cast<Level>(integer());
            expect(')', "shift amount");
            op = Operation::shift(target, amount);
        } else if (gate == "swp") {
            expect('(', "swap levels");
            const auto a = static_cast<Level>(integer());
            expect(',', "swap levels");
            const auto b = static_cast<Level>(integer());
            expect(')', "swap levels");
            op = Operation::levelSwap(target, a, b);
        } else {
            fail("unknown gate '" + gate + "'");
        }

        skipSpace();
        if (line_.compare(cursor_, 3, "ctl") == 0) {
            cursor_ += 3;
            op.controls = parseControls();
        }
        expect(';', "statement");
        skipSpace();
        if (cursor_ != line_.size()) {
            fail("trailing characters after ';'");
        }
        try {
            circuit.append(std::move(op));
        } catch (const InvalidArgumentError& error) {
            fail(error.what());
        }
    }

    std::istream& in_;
    std::string line_;
    std::size_t cursor_ = 0;
    std::size_t lineNumber_ = 0;
};

} // namespace

Circuit parseQasm(std::istream& in) {
    QasmParser parser(in);
    return parser.parse();
}

Circuit parseQasmString(const std::string& text) {
    std::istringstream stream(text);
    return parseQasm(stream);
}

} // namespace mqsp
