#include "mqsp/circuit/matrix.hpp"

#include "mqsp/support/error.hpp"

#include <algorithm>
#include <cmath>

namespace mqsp {

DenseMatrix::DenseMatrix(std::size_t n) : n_(n), data_(n * n, Complex{0.0, 0.0}) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
    DenseMatrix m(n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = Complex{1.0, 0.0};
    }
    return m;
}

const Complex& DenseMatrix::operator()(std::size_t row, std::size_t col) const {
    requireThat(row < n_ && col < n_, "DenseMatrix: index out of range");
    return data_[row * n_ + col];
}

Complex& DenseMatrix::operator()(std::size_t row, std::size_t col) {
    requireThat(row < n_ && col < n_, "DenseMatrix: index out of range");
    return data_[row * n_ + col];
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& rhs) const {
    requireThat(n_ == rhs.n_, "DenseMatrix::multiply: size mismatch");
    DenseMatrix out(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t k = 0; k < n_; ++k) {
            const Complex aik = data_[i * n_ + k];
            if (aik == Complex{0.0, 0.0}) {
                continue;
            }
            for (std::size_t j = 0; j < n_; ++j) {
                out.data_[i * n_ + j] += aik * rhs.data_[k * n_ + j];
            }
        }
    }
    return out;
}

DenseMatrix DenseMatrix::adjoint() const {
    DenseMatrix out(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j < n_; ++j) {
            out.data_[j * n_ + i] = std::conj(data_[i * n_ + j]);
        }
    }
    return out;
}

std::vector<Complex> DenseMatrix::apply(const std::vector<Complex>& v) const {
    requireThat(v.size() == n_, "DenseMatrix::apply: vector size mismatch");
    std::vector<Complex> out(n_, Complex{0.0, 0.0});
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j < n_; ++j) {
            out[i] += data_[i * n_ + j] * v[j];
        }
    }
    return out;
}

bool DenseMatrix::isUnitary(double tol) const {
    const DenseMatrix product = multiply(adjoint());
    return product.maxDeviation(identity(n_)) <= tol;
}

bool DenseMatrix::approxEquals(const DenseMatrix& other, double tol) const {
    return n_ == other.n_ && maxDeviation(other) <= tol;
}

double DenseMatrix::maxDeviation(const DenseMatrix& other) const {
    requireThat(n_ == other.n_, "DenseMatrix::maxDeviation: size mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
    }
    return worst;
}

} // namespace mqsp
