#include "mqsp/circuit/printer.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parse.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace mqsp {

void printCircuitText(std::ostream& out, const Circuit& circuit) {
    out << "circuit \"" << circuit.name() << "\" on "
        << formatDimensionSpec(circuit.dimensions()) << " (" << circuit.numQudits()
        << " qudits)\n";
    std::size_t index = 0;
    for (const auto& op : circuit.operations()) {
        out << std::setw(5) << index++ << ": " << op.toString() << '\n';
    }
    const auto stats = circuit.stats();
    out << "ops=" << stats.numOperations << " rotations=" << stats.numRotations
        << " phases=" << stats.numPhases << " medianControls=" << stats.medianControls
        << " maxControls=" << stats.maxControls << " depth~=" << stats.depthEstimate << '\n';
}

std::string circuitToText(const Circuit& circuit) {
    std::ostringstream out;
    printCircuitText(out, circuit);
    return out.str();
}

namespace {

const char* kindName(GateKind kind) {
    switch (kind) {
    case GateKind::GivensRotation:
        return "givens";
    case GateKind::PhaseRotation:
        return "phase";
    case GateKind::Hadamard:
        return "hadamard";
    case GateKind::Shift:
        return "shift";
    case GateKind::LevelSwap:
        return "levelswap";
    }
    detail::throwInternal("kindName: unknown gate kind");
}

GateKind kindFromName(const std::string& name) {
    if (name == "givens") {
        return GateKind::GivensRotation;
    }
    if (name == "phase") {
        return GateKind::PhaseRotation;
    }
    if (name == "hadamard") {
        return GateKind::Hadamard;
    }
    if (name == "shift") {
        return GateKind::Shift;
    }
    if (name == "levelswap") {
        return GateKind::LevelSwap;
    }
    detail::throwInvalidArgument("parseCircuitJsonLines: unknown gate kind '" + name + "'");
}

// Minimal JSON value scanners for the flat objects we emit. The emitted
// format is fully under our control, so a full JSON parser is unnecessary;
// these helpers still validate structure and throw on malformed input.
std::string extractString(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":\"";
    const auto pos = line.find(needle);
    requireThat(pos != std::string::npos,
                "parseCircuitJsonLines: missing key '" + key + "' in: " + line);
    const auto start = pos + needle.size();
    const auto end = line.find('"', start);
    requireThat(end != std::string::npos, "parseCircuitJsonLines: unterminated string value");
    return line.substr(start, end - start);
}

double extractNumber(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    requireThat(pos != std::string::npos, "parseCircuitJsonLines: missing key '" + key +
                                              "' in: " + parse::clipForMessage(line));
    const auto start = pos + needle.size();
    auto end = line.find_first_of(",}]", start);
    if (end == std::string::npos) {
        end = line.size();
    }
    return parse::real(line.substr(start, end - start),
                       "parseCircuitJsonLines: value for key '" + key +
                           "' in: " + parse::clipForMessage(line));
}

std::vector<Control> extractControls(const std::string& line) {
    std::vector<Control> controls;
    const std::string needle = "\"controls\":[";
    const auto pos = line.find(needle);
    requireThat(pos != std::string::npos, "parseCircuitJsonLines: missing controls array in: " +
                                              parse::clipForMessage(line));
    auto cursor = pos + needle.size();
    while (cursor < line.size() && line[cursor] != ']') {
        if (line[cursor] == '[') {
            const auto comma = line.find(',', cursor);
            const auto close = line.find(']', cursor);
            requireThat(comma != std::string::npos && close != std::string::npos &&
                            comma < close,
                        "parseCircuitJsonLines: malformed control pair in: " +
                            parse::clipForMessage(line));
            Control ctrl;
            const std::string context =
                "parseCircuitJsonLines: control pair in: " + parse::clipForMessage(line);
            ctrl.qudit = static_cast<std::size_t>(
                parse::uint64(line.substr(cursor + 1, comma - cursor - 1), context));
            ctrl.level = static_cast<Level>(
                parse::uint64(line.substr(comma + 1, close - comma - 1), context));
            controls.push_back(ctrl);
            cursor = close + 1;
        } else {
            ++cursor;
        }
    }
    requireThat(cursor < line.size(),
                "parseCircuitJsonLines: unterminated controls array in: " +
                    parse::clipForMessage(line));
    return controls;
}

} // namespace

void printCircuitJsonLines(std::ostream& out, const Circuit& circuit) {
    out << "{\"name\":\"" << circuit.name() << "\",\"dims\":[";
    const auto& dims = circuit.dimensions();
    for (std::size_t i = 0; i < dims.size(); ++i) {
        if (i > 0) {
            out << ',';
        }
        out << dims[i];
    }
    out << "]}\n";
    out << std::setprecision(17);
    for (const auto& op : circuit.operations()) {
        out << "{\"kind\":\"" << kindName(op.kind) << "\",\"target\":" << op.target
            << ",\"levelA\":" << op.levelA << ",\"levelB\":" << op.levelB
            << ",\"theta\":" << op.theta << ",\"phi\":" << op.phi
            << ",\"shift\":" << op.shiftAmount << ",\"controls\":[";
        for (std::size_t i = 0; i < op.controls.size(); ++i) {
            if (i > 0) {
                out << ',';
            }
            out << '[' << op.controls[i].qudit << ',' << op.controls[i].level << ']';
        }
        out << "]}\n";
    }
}

Circuit parseCircuitJsonLines(std::istream& in) {
    std::string header;
    requireThat(static_cast<bool>(std::getline(in, header)),
                "parseCircuitJsonLines: missing header line");
    const std::string name = extractString(header, "name");
    Dimensions dims;
    const std::string needle = "\"dims\":[";
    const auto pos = header.find(needle);
    requireThat(pos != std::string::npos, "parseCircuitJsonLines: missing dims array");
    auto cursor = pos + needle.size();
    while (cursor < header.size() && header[cursor] != ']') {
        const auto end = header.find_first_of(",]", cursor);
        requireThat(end != std::string::npos, "parseCircuitJsonLines: unterminated dims in: " +
                                                  parse::clipForMessage(header));
        dims.push_back(static_cast<Dimension>(
            parse::uint64(header.substr(cursor, end - cursor),
                          "parseCircuitJsonLines: dims entry in: " +
                              parse::clipForMessage(header))));
        cursor = end;
        if (header[cursor] == ',') {
            ++cursor;
        }
    }

    Circuit circuit(dims, name);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        Operation op;
        op.kind = kindFromName(extractString(line, "kind"));
        op.target = static_cast<std::size_t>(extractNumber(line, "target"));
        op.levelA = static_cast<Level>(extractNumber(line, "levelA"));
        op.levelB = static_cast<Level>(extractNumber(line, "levelB"));
        op.theta = extractNumber(line, "theta");
        op.phi = extractNumber(line, "phi");
        op.shiftAmount = static_cast<Level>(extractNumber(line, "shift"));
        op.controls = extractControls(line);
        circuit.append(std::move(op));
    }
    return circuit;
}

} // namespace mqsp
