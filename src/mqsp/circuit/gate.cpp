#include "mqsp/circuit/gate.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

namespace mqsp {

namespace {
constexpr double kPi = std::numbers::pi;
} // namespace

Operation Operation::givens(std::size_t target, Level levelA, Level levelB, double theta,
                            double phi, std::vector<Control> controls) {
    requireThat(levelA != levelB, "Operation::givens: levels must differ");
    Operation op;
    op.kind = GateKind::GivensRotation;
    op.target = target;
    op.levelA = levelA;
    op.levelB = levelB;
    op.theta = theta;
    op.phi = phi;
    op.controls = std::move(controls);
    return op;
}

Operation Operation::phase(std::size_t target, Level levelA, Level levelB, double theta,
                           std::vector<Control> controls) {
    requireThat(levelA != levelB, "Operation::phase: levels must differ");
    Operation op;
    op.kind = GateKind::PhaseRotation;
    op.target = target;
    op.levelA = levelA;
    op.levelB = levelB;
    op.theta = theta;
    op.controls = std::move(controls);
    return op;
}

Operation Operation::hadamard(std::size_t target, std::vector<Control> controls) {
    Operation op;
    op.kind = GateKind::Hadamard;
    op.target = target;
    op.controls = std::move(controls);
    return op;
}

Operation Operation::shift(std::size_t target, Level amount, std::vector<Control> controls) {
    Operation op;
    op.kind = GateKind::Shift;
    op.target = target;
    op.shiftAmount = amount;
    op.controls = std::move(controls);
    return op;
}

Operation Operation::levelSwap(std::size_t target, Level levelA, Level levelB,
                               std::vector<Control> controls) {
    requireThat(levelA != levelB, "Operation::levelSwap: levels must differ");
    Operation op;
    op.kind = GateKind::LevelSwap;
    op.target = target;
    op.levelA = levelA;
    op.levelB = levelB;
    op.controls = std::move(controls);
    return op;
}

DenseMatrix Operation::localMatrix(Dimension dim) const {
    switch (kind) {
    case GateKind::GivensRotation:
        return givensMatrix(dim, levelA, levelB, theta, phi);
    case GateKind::PhaseRotation:
        return phaseMatrix(dim, levelA, levelB, theta);
    case GateKind::Hadamard:
        return hadamardMatrix(dim);
    case GateKind::Shift:
        return shiftMatrix(dim, shiftAmount);
    case GateKind::LevelSwap:
        return levelSwapMatrix(dim, levelA, levelB);
    }
    detail::throwInternal("Operation::localMatrix: unknown gate kind");
}

bool Operation::isIdentity(double tol) const {
    switch (kind) {
    case GateKind::GivensRotation: {
        // R is identity iff theta == 0 (mod 4 pi); practically theta ~ 0.
        return std::abs(std::sin(theta / 2.0)) <= tol && std::cos(theta / 2.0) >= 1.0 - tol;
    }
    case GateKind::PhaseRotation:
        return std::abs(std::sin(theta / 2.0)) <= tol && std::cos(theta / 2.0) >= 1.0 - tol;
    case GateKind::Hadamard:
        return false;
    case GateKind::Shift:
        return shiftAmount == 0;
    case GateKind::LevelSwap:
        return false; // levels always differ
    }
    detail::throwInternal("Operation::isIdentity: unknown gate kind");
}

Operation Operation::inverse() const {
    Operation inv = *this;
    switch (kind) {
    case GateKind::GivensRotation:
    case GateKind::PhaseRotation:
        inv.theta = -theta;
        return inv;
    case GateKind::Hadamard:
        detail::throwInvalidArgument(
            "Operation::inverse: Hadamard inverse is not in the gate alphabet; "
            "decompose it into rotations first");
    case GateKind::Shift:
        // The inverse shift amount depends on the target dimension, which the
        // operation does not know; callers must handle Shift themselves.
        detail::throwInvalidArgument(
            "Operation::inverse: Shift inverse requires the qudit dimension");
    case GateKind::LevelSwap:
        return inv; // self-inverse
    }
    detail::throwInternal("Operation::inverse: unknown gate kind");
}

std::string Operation::toString() const {
    std::ostringstream out;
    switch (kind) {
    case GateKind::GivensRotation:
        out << "R(" << levelA << ',' << levelB << "| th=" << theta << ", ph=" << phi << ")";
        break;
    case GateKind::PhaseRotation:
        out << "Z(" << levelA << ',' << levelB << "| th=" << theta << ")";
        break;
    case GateKind::Hadamard:
        out << "H";
        break;
    case GateKind::Shift:
        out << "X+" << shiftAmount;
        break;
    case GateKind::LevelSwap:
        out << "X(" << levelA << ',' << levelB << ")";
        break;
    }
    out << " @ q" << target;
    if (!controls.empty()) {
        out << " ctrl[";
        for (std::size_t i = 0; i < controls.size(); ++i) {
            if (i > 0) {
                out << ',';
            }
            out << 'q' << controls[i].qudit << '=' << controls[i].level;
        }
        out << ']';
    }
    return out.str();
}

DenseMatrix hadamardMatrix(Dimension dim) {
    requireThat(dim >= 2, "hadamardMatrix: dimension must be >= 2");
    DenseMatrix m(dim);
    const double invSqrt = 1.0 / std::sqrt(static_cast<double>(dim));
    for (Dimension r = 0; r < dim; ++r) {
        for (Dimension c = 0; c < dim; ++c) {
            const double angle = 2.0 * kPi * static_cast<double>(r) * static_cast<double>(c) /
                                 static_cast<double>(dim);
            m(r, c) = invSqrt * Complex{std::cos(angle), std::sin(angle)};
        }
    }
    return m;
}

DenseMatrix shiftMatrix(Dimension dim, Level amount) {
    requireThat(dim >= 2, "shiftMatrix: dimension must be >= 2");
    DenseMatrix m(dim);
    for (Dimension c = 0; c < dim; ++c) {
        m((c + amount) % dim, c) = Complex{1.0, 0.0};
    }
    return m;
}

DenseMatrix givensMatrix(Dimension dim, Level levelA, Level levelB, double theta, double phi) {
    requireThat(levelA < dim && levelB < dim, "givensMatrix: level out of range");
    requireThat(levelA != levelB, "givensMatrix: levels must differ");
    DenseMatrix m = DenseMatrix::identity(dim);
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    // exp(-i t/2 (cos(phi) sx + sin(phi) sy)) restricted to {a, b}:
    //   [ cos(t/2)                  , -i e^{-i phi} sin(t/2) ]
    //   [ -i e^{+i phi} sin(t/2)    ,  cos(t/2)              ]
    const Complex offAB = Complex{0.0, -1.0} * Complex{std::cos(-phi), std::sin(-phi)} * s;
    const Complex offBA = Complex{0.0, -1.0} * Complex{std::cos(phi), std::sin(phi)} * s;
    m(levelA, levelA) = Complex{c, 0.0};
    m(levelB, levelB) = Complex{c, 0.0};
    m(levelA, levelB) = offAB;
    m(levelB, levelA) = offBA;
    return m;
}

DenseMatrix levelSwapMatrix(Dimension dim, Level levelA, Level levelB) {
    requireThat(levelA < dim && levelB < dim, "levelSwapMatrix: level out of range");
    requireThat(levelA != levelB, "levelSwapMatrix: levels must differ");
    DenseMatrix m = DenseMatrix::identity(dim);
    m(levelA, levelA) = Complex{0.0, 0.0};
    m(levelB, levelB) = Complex{0.0, 0.0};
    m(levelA, levelB) = Complex{1.0, 0.0};
    m(levelB, levelA) = Complex{1.0, 0.0};
    return m;
}

DenseMatrix phaseMatrix(Dimension dim, Level levelA, Level levelB, double theta) {
    requireThat(levelA < dim && levelB < dim, "phaseMatrix: level out of range");
    requireThat(levelA != levelB, "phaseMatrix: levels must differ");
    DenseMatrix m = DenseMatrix::identity(dim);
    // Sign convention chosen so the paper's decomposition identity holds
    // verbatim: Z(t) = R(-pi/2, 0) * R(t, pi/2) * R(pi/2, 0).
    m(levelA, levelA) = Complex{std::cos(theta / 2.0), std::sin(theta / 2.0)};
    m(levelB, levelB) = Complex{std::cos(theta / 2.0), -std::sin(theta / 2.0)};
    return m;
}

} // namespace mqsp
