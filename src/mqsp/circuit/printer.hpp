#pragma once

#include "mqsp/circuit/circuit.hpp"

#include <iosfwd>
#include <string>

namespace mqsp {

/// Render a circuit as a human-readable op listing:
///   one line per operation, in application order, plus a header with the
///   register spec and a footer with the resource statistics.
void printCircuitText(std::ostream& out, const Circuit& circuit);

/// Convenience wrapper returning the text listing as a string.
[[nodiscard]] std::string circuitToText(const Circuit& circuit);

/// Serialize a circuit to a line-oriented machine-readable format (one JSON
/// object per op). Round-trips with parseCircuitJsonLines.
void printCircuitJsonLines(std::ostream& out, const Circuit& circuit);

/// Parse the format emitted by printCircuitJsonLines. Throws
/// InvalidArgumentError on malformed input.
[[nodiscard]] Circuit parseCircuitJsonLines(std::istream& in);

} // namespace mqsp
