#pragma once

#include "mqsp/complexnum/complex.hpp"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace mqsp {

/// Uniquing table for complex values.
///
/// Decision-diagram packages store each distinct complex number once and let
/// edges reference the shared entry; the paper's "DistinctC" column in
/// Table 1 is the number of entries in this table for a given diagram. Two
/// values within the configured tolerance of each other are considered the
/// same entry.
///
/// Lookup strategy: values are bucketed by rounding each component to a grid
/// of `tolerance` cells; a probe checks the candidate's own bucket plus the
/// adjacent buckets so that near-boundary values still unify. This is the
/// classical technique from DD packages for quantum computing (Zulehner et
/// al., ICCAD 2019) reimplemented here.
class ComplexTable {
public:
    explicit ComplexTable(double tolerance = Tolerance::kDefault);

    /// Index of a value in the table; inserts it if no entry is within
    /// tolerance. Returns a stable id usable until clear().
    std::size_t lookup(const Complex& value);

    /// True when an entry within tolerance of `value` already exists.
    [[nodiscard]] bool contains(const Complex& value) const;

    /// The canonical stored value for an id returned by lookup().
    [[nodiscard]] const Complex& valueOf(std::size_t id) const;

    /// Number of distinct values stored (the paper's "DistinctC").
    [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

    [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

    /// The tolerance this table unifies under.
    [[nodiscard]] double tolerance() const noexcept { return tolerance_; }

    /// Remove all entries.
    void clear();

    /// All canonical values, in insertion order.
    [[nodiscard]] const std::vector<Complex>& values() const noexcept { return values_; }

private:
    using BucketKey = std::uint64_t;

    [[nodiscard]] BucketKey bucketOf(double re, double im) const noexcept;

    double tolerance_;
    double inverseCell_;
    std::vector<Complex> values_;
    std::unordered_map<BucketKey, std::vector<std::size_t>> buckets_;
};

} // namespace mqsp
