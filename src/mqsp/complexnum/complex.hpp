#pragma once

#include <complex>
#include <string>

namespace mqsp {

/// Complex amplitude type used throughout the library.
using Complex = std::complex<double>;

/// Numerical tolerance policy for comparing amplitudes, edge weights and
/// fidelities. Decision-diagram packages for quantum computing must compare
/// floating-point complex numbers "up to noise" (see Zulehner et al.,
/// "How to efficiently handle complex values?", ICCAD 2019); this type holds
/// the single tolerance the whole library agrees on.
struct Tolerance {
    /// Default absolute tolerance for amplitude comparisons. Loose enough to
    /// absorb accumulated rounding across deep diagrams, tight enough to
    /// distinguish all amplitudes occurring in the paper's benchmarks.
    static constexpr double kDefault = 1e-10;

    double value = kDefault;
};

/// True when |a - b| <= tol componentwise (the metric used by DD packages:
/// component-wise comparison is cheaper than the modulus and compatible with
/// hashing by rounded buckets).
[[nodiscard]] bool approxEqual(const Complex& a, const Complex& b,
                               double tol = Tolerance::kDefault) noexcept;

/// True when |a| <= tol componentwise.
[[nodiscard]] bool approxZero(const Complex& a, double tol = Tolerance::kDefault) noexcept;

/// True when a is within tol of 1 + 0i.
[[nodiscard]] bool approxOne(const Complex& a, double tol = Tolerance::kDefault) noexcept;

/// Squared magnitude |a|^2 (the probability weight of an amplitude).
[[nodiscard]] double squaredMagnitude(const Complex& a) noexcept;

/// Render an amplitude compactly, e.g. "0.57735", "-0.5+0.5i", "1i".
[[nodiscard]] std::string toString(const Complex& a, int precision = 6);

} // namespace mqsp
