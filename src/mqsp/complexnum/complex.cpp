#include "mqsp/complexnum/complex.hpp"

#include <cmath>
#include <sstream>

namespace mqsp {

bool approxEqual(const Complex& a, const Complex& b, double tol) noexcept {
    return std::abs(a.real() - b.real()) <= tol && std::abs(a.imag() - b.imag()) <= tol;
}

bool approxZero(const Complex& a, double tol) noexcept {
    return std::abs(a.real()) <= tol && std::abs(a.imag()) <= tol;
}

bool approxOne(const Complex& a, double tol) noexcept {
    return approxEqual(a, Complex{1.0, 0.0}, tol);
}

double squaredMagnitude(const Complex& a) noexcept { return std::norm(a); }

std::string toString(const Complex& a, int precision) {
    std::ostringstream out;
    out.precision(precision);
    const bool hasReal = std::abs(a.real()) > 0.0;
    const bool hasImag = std::abs(a.imag()) > 0.0;
    if (!hasImag) {
        out << a.real();
        return out.str();
    }
    if (hasReal) {
        out << a.real();
        if (a.imag() >= 0.0) {
            out << '+';
        }
    }
    out << a.imag() << 'i';
    return out.str();
}

} // namespace mqsp
