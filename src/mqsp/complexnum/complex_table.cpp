#include "mqsp/complexnum/complex_table.hpp"

#include "mqsp/support/error.hpp"

#include <cmath>
#include <cstdint>

namespace mqsp {

namespace {
// Cells are 4x the tolerance so that checking the 3x3 neighborhood of a
// bucket is guaranteed to cover every entry within `tolerance`.
constexpr double kCellFactor = 4.0;

std::int64_t cellCoordinate(double component, double inverseCell) noexcept {
    return static_cast<std::int64_t>(std::floor(component * inverseCell));
}

std::uint64_t keyOfCell(std::int64_t x, std::int64_t y) noexcept {
    return static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ULL ^
           (static_cast<std::uint64_t>(y) + 0x7f4a7c159e3779b9ULL);
}
} // namespace

ComplexTable::ComplexTable(double tolerance)
    : tolerance_(tolerance), inverseCell_(1.0 / (kCellFactor * tolerance)) {
    requireThat(tolerance > 0.0, "ComplexTable: tolerance must be positive");
}

ComplexTable::BucketKey ComplexTable::bucketOf(double re, double im) const noexcept {
    return keyOfCell(cellCoordinate(re, inverseCell_), cellCoordinate(im, inverseCell_));
}

std::size_t ComplexTable::lookup(const Complex& value) {
    const auto baseX = cellCoordinate(value.real(), inverseCell_);
    const auto baseY = cellCoordinate(value.imag(), inverseCell_);
    for (const std::int64_t dx : {0LL, -1LL, 1LL}) {
        for (const std::int64_t dy : {0LL, -1LL, 1LL}) {
            const auto it = buckets_.find(keyOfCell(baseX + dx, baseY + dy));
            if (it == buckets_.end()) {
                continue;
            }
            for (const auto id : it->second) {
                if (approxEqual(values_[id], value, tolerance_)) {
                    return id;
                }
            }
        }
    }
    const std::size_t id = values_.size();
    values_.push_back(value);
    buckets_[bucketOf(value.real(), value.imag())].push_back(id);
    return id;
}

bool ComplexTable::contains(const Complex& value) const {
    const auto baseX = cellCoordinate(value.real(), inverseCell_);
    const auto baseY = cellCoordinate(value.imag(), inverseCell_);
    for (const std::int64_t dx : {0LL, -1LL, 1LL}) {
        for (const std::int64_t dy : {0LL, -1LL, 1LL}) {
            const auto it = buckets_.find(keyOfCell(baseX + dx, baseY + dy));
            if (it == buckets_.end()) {
                continue;
            }
            for (const auto id : it->second) {
                if (approxEqual(values_[id], value, tolerance_)) {
                    return true;
                }
            }
        }
    }
    return false;
}

const Complex& ComplexTable::valueOf(std::size_t id) const {
    requireThat(id < values_.size(), "ComplexTable::valueOf: id out of range");
    return values_[id];
}

void ComplexTable::clear() {
    values_.clear();
    buckets_.clear();
}

} // namespace mqsp
