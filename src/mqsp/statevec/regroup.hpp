#pragma once

#include "mqsp/statevec/state_vector.hpp"

#include <cstddef>
#include <vector>

namespace mqsp {

/// Register regrouping — the embedding behind "compression of qubit
/// circuits to mixed-dimensional systems" (the paper's reference [15]):
/// packing k adjacent sites of dimensions d_1..d_k into one qudit of
/// dimension d_1*...*d_k is a pure relabeling in the shared mixed-radix
/// order, so the amplitude vector is untouched and only the register
/// geometry changes.

/// Dimensions after grouping: `grouping` lists how many adjacent sites go
/// into each new qudit (must sum to the input's qudit count).
[[nodiscard]] Dimensions groupDimensions(const Dimensions& dims,
                                         const std::vector<std::size_t>& grouping);

/// Pack adjacent sites into larger qudits. grouping {2, 1, 3} over a
/// six-qubit register yields dims {4, 2, 8}; grouping {n} collapses the
/// whole register into a single qudit.
[[nodiscard]] StateVector groupSites(const StateVector& state,
                                     const std::vector<std::size_t>& grouping);

/// Inverse of groupSites for power-decomposable targets: split every site
/// into the listed factor dimensions (the factors of site i are
/// `factors[i]`, whose product must equal the site's dimension).
[[nodiscard]] StateVector splitSites(const StateVector& state,
                                     const std::vector<Dimensions>& factors);

} // namespace mqsp
