#include "mqsp/statevec/state_vector.hpp"

#include "mqsp/support/error.hpp"
#include "mqsp/support/parallel.hpp"

#include <cmath>
#include <ostream>

namespace mqsp {

namespace {

/// Amplitudes per reduction chunk. Chunk boundaries are a function of this
/// constant alone (never of the thread count), so norms and inner products
/// are bit-identical at 1 and at N threads; vectors that fit one chunk
/// reduce in the exact left-to-right order the single-threaded code used.
constexpr std::uint64_t kReduceGrain = 8192;

} // namespace

StateVector::StateVector(Dimensions dimensions)
    : radix_(std::move(dimensions)), amps_(radix_.totalDimension(), Complex{0.0, 0.0}) {
    amps_[0] = Complex{1.0, 0.0};
}

StateVector::StateVector(Dimensions dimensions, std::vector<Complex> amplitudes)
    : radix_(std::move(dimensions)), amps_(std::move(amplitudes)) {
    requireThat(amps_.size() == radix_.totalDimension(),
                "StateVector: amplitude count does not match the register's total dimension");
}

const Complex& StateVector::operator[](std::uint64_t index) const {
    requireThat(index < amps_.size(), "StateVector: index out of range");
    return amps_[index];
}

Complex& StateVector::operator[](std::uint64_t index) {
    requireThat(index < amps_.size(), "StateVector: index out of range");
    return amps_[index];
}

const Complex& StateVector::at(const Digits& digits) const {
    return amps_[radix_.indexOf(digits)];
}

Complex& StateVector::at(const Digits& digits) { return amps_[radix_.indexOf(digits)]; }

double StateVector::norm() const { return std::sqrt(normSquared()); }

double StateVector::normSquared() const {
    return parallel::parallelReduce(
        std::uint64_t{0}, amps_.size(), kReduceGrain, 0.0,
        [&](std::uint64_t begin, std::uint64_t end) {
            double sum = 0.0;
            for (std::uint64_t i = begin; i < end; ++i) {
                sum += squaredMagnitude(amps_[i]);
            }
            return sum;
        },
        [](double acc, double partial) { return acc + partial; });
}

bool StateVector::isNormalized(double tol) const { return std::abs(norm() - 1.0) <= tol; }

void StateVector::normalize() {
    const double n = norm();
    requireThat(n > 0.0, "StateVector::normalize: cannot normalize the zero vector");
    parallel::parallelFor(std::uint64_t{0}, amps_.size(), kReduceGrain,
                          [&](std::uint64_t begin, std::uint64_t end) {
                              for (std::uint64_t i = begin; i < end; ++i) {
                                  amps_[i] /= n;
                              }
                          });
}

Complex StateVector::innerProduct(const StateVector& other) const {
    requireThat(radix_ == other.radix_,
                "StateVector::innerProduct: registers have different dimensions");
    return parallel::parallelReduce(
        std::uint64_t{0}, amps_.size(), kReduceGrain, Complex{0.0, 0.0},
        [&](std::uint64_t begin, std::uint64_t end) {
            Complex sum{0.0, 0.0};
            for (std::uint64_t i = begin; i < end; ++i) {
                sum += std::conj(amps_[i]) * other.amps_[i];
            }
            return sum;
        },
        [](Complex acc, Complex partial) { return acc + partial; });
}

double StateVector::fidelityWith(const StateVector& other) const {
    return squaredMagnitude(innerProduct(other));
}

std::uint64_t StateVector::countNonZero(double tol) const {
    std::uint64_t count = 0;
    for (const auto& amp : amps_) {
        if (!approxZero(amp, tol)) {
            ++count;
        }
    }
    return count;
}

StateVector StateVector::kron(const StateVector& other) const {
    Dimensions dims = radix_.dimensions();
    dims.insert(dims.end(), other.dimensions().begin(), other.dimensions().end());
    std::vector<Complex> result;
    result.reserve(amps_.size() * other.amps_.size());
    for (const auto& hi : amps_) {
        for (const auto& lo : other.amps_) {
            result.push_back(hi * lo);
        }
    }
    return StateVector{std::move(dims), std::move(result)};
}

StateVector StateVector::basis(Dimensions dimensions, const Digits& digits) {
    StateVector state(std::move(dimensions));
    state.amps_[0] = Complex{0.0, 0.0};
    state.amps_[state.radix_.indexOf(digits)] = Complex{1.0, 0.0};
    return state;
}

std::ostream& operator<<(std::ostream& out, const StateVector& state) {
    bool first = true;
    for (std::uint64_t i = 0; i < state.size(); ++i) {
        const auto& amp = state.amps_[i];
        if (approxZero(amp, 1e-12)) {
            continue;
        }
        if (!first) {
            out << " + ";
        }
        out << '(' << toString(amp) << ") " << MixedRadix::toKetString(state.radix_.digitsOf(i));
        first = false;
    }
    if (first) {
        out << "0";
    }
    return out;
}

} // namespace mqsp
