#include "mqsp/statevec/regroup.hpp"

#include "mqsp/support/error.hpp"

#include <numeric>

namespace mqsp {

Dimensions groupDimensions(const Dimensions& dims,
                           const std::vector<std::size_t>& grouping) {
    requireThat(!grouping.empty(), "groupDimensions: grouping must not be empty");
    const std::size_t total =
        std::accumulate(grouping.begin(), grouping.end(), std::size_t{0});
    requireThat(total == dims.size(),
                "groupDimensions: grouping must cover every site exactly once");
    Dimensions grouped;
    grouped.reserve(grouping.size());
    std::size_t site = 0;
    for (const std::size_t count : grouping) {
        requireThat(count >= 1, "groupDimensions: empty group");
        std::uint64_t dim = 1;
        for (std::size_t k = 0; k < count; ++k) {
            dim *= dims[site++];
            requireThat(dim <= std::numeric_limits<Dimension>::max(),
                        "groupDimensions: grouped dimension overflows");
        }
        grouped.push_back(static_cast<Dimension>(dim));
    }
    return grouped;
}

StateVector groupSites(const StateVector& state, const std::vector<std::size_t>& grouping) {
    // Packing adjacent mixed-radix digits preserves the flat index: the
    // amplitude vector carries over verbatim.
    return StateVector(groupDimensions(state.dimensions(), grouping),
                       state.amplitudes());
}

StateVector splitSites(const StateVector& state, const std::vector<Dimensions>& factors) {
    requireThat(factors.size() == state.numQudits(),
                "splitSites: need one factor list per site");
    Dimensions split;
    for (std::size_t site = 0; site < factors.size(); ++site) {
        requireThat(!factors[site].empty(), "splitSites: empty factor list");
        std::uint64_t product = 1;
        for (const Dimension factor : factors[site]) {
            requireThat(factor >= 2, "splitSites: factors must be >= 2");
            product *= factor;
            split.push_back(factor);
        }
        requireThat(product == state.dimensions()[site],
                    "splitSites: factors do not multiply to the site dimension");
    }
    return StateVector(std::move(split), state.amplitudes());
}

} // namespace mqsp
