#pragma once

#include "mqsp/complexnum/complex.hpp"
#include "mqsp/support/mixed_radix.hpp"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace mqsp {

/// A quantum state of a register of mixed-dimensional qudits, stored as a
/// dense amplitude vector in the mixed-radix layout of MixedRadix
/// (most significant qudit first).
///
/// This is both the input format of the state-preparation pipeline and the
/// output format of the verification simulator.
class StateVector {
public:
    StateVector() = default;

    /// The all-zeros product state |0...0> on the given register.
    explicit StateVector(Dimensions dimensions);

    /// Adopt a dense amplitude vector; its length must equal the register's
    /// total dimension. Throws InvalidArgumentError otherwise.
    StateVector(Dimensions dimensions, std::vector<Complex> amplitudes);

    /// Register geometry.
    [[nodiscard]] const MixedRadix& radix() const noexcept { return radix_; }
    [[nodiscard]] const Dimensions& dimensions() const noexcept { return radix_.dimensions(); }
    [[nodiscard]] std::size_t numQudits() const noexcept { return radix_.numQudits(); }
    [[nodiscard]] std::uint64_t size() const noexcept { return radix_.totalDimension(); }

    /// Amplitude access by flat index.
    [[nodiscard]] const Complex& operator[](std::uint64_t index) const;
    [[nodiscard]] Complex& operator[](std::uint64_t index);

    /// Amplitude access by digit string (most significant first).
    [[nodiscard]] const Complex& at(const Digits& digits) const;
    [[nodiscard]] Complex& at(const Digits& digits);

    /// Raw amplitudes.
    [[nodiscard]] const std::vector<Complex>& amplitudes() const noexcept { return amps_; }
    [[nodiscard]] std::vector<Complex>& amplitudes() noexcept { return amps_; }

    /// L2 norm of the amplitude vector.
    [[nodiscard]] double norm() const;

    /// Sum of squared magnitudes (norm squared).
    [[nodiscard]] double normSquared() const;

    /// True when |norm - 1| <= tol.
    [[nodiscard]] bool isNormalized(double tol = 1e-9) const;

    /// Scale amplitudes so the norm becomes 1. Throws InvalidArgumentError on
    /// the zero vector.
    void normalize();

    /// <this|other>; registers must match.
    [[nodiscard]] Complex innerProduct(const StateVector& other) const;

    /// |<this|other>|^2 — the state fidelity reported in Table 1.
    [[nodiscard]] double fidelityWith(const StateVector& other) const;

    /// Number of amplitudes with |a| > tol.
    [[nodiscard]] std::uint64_t countNonZero(double tol = Tolerance::kDefault) const;

    /// Kronecker product: this (more significant) ⊗ other (less significant).
    [[nodiscard]] StateVector kron(const StateVector& other) const;

    /// A basis state |digits> on the given register.
    [[nodiscard]] static StateVector basis(Dimensions dimensions, const Digits& digits);

    /// Pretty-print nonzero amplitudes, e.g. "0.707 |0 0> + 0.707 |1 1>".
    friend std::ostream& operator<<(std::ostream& out, const StateVector& state);

private:
    MixedRadix radix_;
    std::vector<Complex> amps_;
};

} // namespace mqsp
